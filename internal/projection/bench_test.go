package projection

import (
	"math/rand"
	"testing"
	"time"

	"eona/internal/core"
	"eona/internal/journal"
)

// benchJournal drives one projected run into dir and returns its recovery.
func benchJournal(b *testing.B, checkpointEvery int) *journal.Recovered {
	b.Helper()
	dir := b.TempDir()
	w, err := journal.Open(journal.Config{Dir: dir, Sync: journal.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	qoe, hints, eng, lu := newFolders()
	e, err := NewEngine(Config{Writer: w, CheckpointEvery: checkpointEvery}, qoe, hints, eng, lu)
	if err != nil {
		b.Fatal(err)
	}
	net, paths, ts := fixtures()["mesh"]()
	driveProjected(b, e, net, paths, ts, 17, 20, 8, 8)
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	rec, err := journal.Recover(dir)
	if err != nil {
		b.Fatal(err)
	}
	return rec
}

// BenchmarkProjectionFold measures the from-scratch fold of a full recovered
// stream into the four standard read models — the cost Resume pays only for
// the tail.
func BenchmarkProjectionFold(b *testing.B) {
	rec := benchJournal(b, 64)
	qoe, hints, eng, lu := newFolders()
	folders := []Folder{qoe, hints, eng, lu}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range folders {
			if err := Fold(rec, f, len(rec.Stream)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMaterializeAt measures read-model time travel to the middle of
// the stream: checkpoint decode plus the fold of the gap back to the probed
// offset.
func BenchmarkMaterializeAt(b *testing.B) {
	rec := benchJournal(b, 32)
	qoe, hints, eng, lu := newFolders()
	folders := []Folder{qoe, hints, eng, lu}
	off := len(rec.Stream) / 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MaterializeAt(rec, off, folders...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProjectedQuery measures the steady-state live query path:
// summary, engagement and hint lookups against warm read models. This is
// the O(1), allocation-free path restarts buy back.
func BenchmarkProjectedQuery(b *testing.B) {
	qoe, hints, eng, lu := newFolders()
	e, err := NewEngine(Config{}, qoe, hints, eng, lu)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 2000; i++ {
		if err := e.AppendIngest(synthIngest(rng, i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.AppendPoll(journal.PollRecord{Source: "peer-a", At: time.Unix(0, 1).UTC()}); err != nil {
		b.Fatal(err)
	}
	key := core.SummaryKey{ClientISP: "isp-a", CDN: "cdnX", Cluster: "c1"}
	if _, ok := qoe.SummaryFor(key); !ok {
		b.Fatalf("group %+v absent after warmup", key)
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := qoe.SummaryFor(key)
		row, _ := eng.Row("isp-a")
		pr, _ := hints.Latest("peer-a")
		sink = s.MeanScore + row.PlaySeconds + float64(len(pr.Data)) + float64(lu.Ops())
	}
	_ = sink
}
