package projection

import (
	"os"
	"path/filepath"
	"testing"

	"eona/internal/journal"
)

// TestProjectionCrashSweep cuts a projected journal at every frame boundary
// — including mid-checkpoint and between a checkpoint and its successor
// records — and requires that resuming from the surviving prefix always
// lands on read models identical to a from-scratch fold of that same
// prefix. This is the offset-commit crash contract: a lost checkpoint only
// costs refolding, never correctness, and a surviving checkpoint's offset
// never runs ahead of surviving data.
func TestProjectionCrashSweep(t *testing.T) {
	for name, build := range fixtures() {
		build := build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			srcDir := t.TempDir()
			w, err := journal.Open(journal.Config{
				Dir: srcDir, Sync: journal.SyncNever, SegmentBytes: 4 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			qoe, hints, eng, lu := newFolders()
			e, err := NewEngine(Config{Writer: w, CheckpointEvery: 8}, qoe, hints, eng, lu)
			if err != nil {
				t.Fatal(err)
			}
			net, paths, ts := build()
			driveProjected(t, e, net, paths, ts, 5, 5, 6, 4)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			segs, err := journal.SegmentPaths(srcDir)
			if err != nil {
				t.Fatal(err)
			}
			if len(segs) < 2 {
				t.Fatalf("want a multi-segment journal for the sweep, got %d segments", len(segs))
			}
			cuts := 0
			for si, seg := range segs {
				data, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				for _, cut := range journal.FrameBoundaries(data) {
					checkProjectionCrash(t, segs, si, cut)
					cuts++
					// Also a torn frame: a cut strictly inside the next
					// record, which recovery must truncate away.
					if cut+5 < len(data) {
						checkProjectionCrash(t, segs, si, cut+5)
						cuts++
					}
				}
			}
			if cuts == 0 {
				t.Fatal("sweep produced no cuts")
			}
		})
	}
}

// checkProjectionCrash copies the journal truncated at (segment si, byte
// cut), dropping later segments — the crash image — then checks the resume
// invariant on it.
func checkProjectionCrash(t *testing.T, segs []string, si, cut int) {
	t.Helper()
	dir := t.TempDir()
	for i, seg := range segs {
		if i > si {
			break
		}
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if i == si {
			if cut > len(data) {
				cut = len(data)
			}
			data = data[:cut]
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatalf("seg %d cut %d: recover: %v", si, cut, err)
	}

	// Arm 1: resume through the engine (checkpoint + tail).
	q1, h1, e1, l1 := newFolders()
	eng1, err := NewEngine(Config{}, q1, h1, e1, l1)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng1.Resume(rec)
	if err != nil {
		t.Fatalf("seg %d cut %d: resume: %v", si, cut, err)
	}

	// Arm 2: from-scratch fold of the surviving prefix.
	q2, h2, e2, l2 := newFolders()
	scratch := []Folder{q2, h2, e2, l2}
	for _, f := range scratch {
		if err := Fold(rec, f, len(rec.Stream)); err != nil {
			t.Fatalf("seg %d cut %d: fold: %v", si, cut, err)
		}
	}
	resumed := []Folder{q1, h1, e1, l1}
	for i, f := range resumed {
		if dr, ds := StateDigest(f), StateDigest(scratch[i]); dr != ds {
			t.Fatalf("seg %d cut %d: folder %q resumed %016x != from-scratch %016x (tail %d)",
				si, cut, f.Name(), dr, ds, stats.TailFolded[f.Name()])
		}
	}

	// Offset-commit invariant: every surviving checkpoint's offset points
	// inside the surviving stream (the frame is appended after the data it
	// covers, so a crash can never leave an offset dangling past the tear).
	for fname, cps := range rec.Checkpoints {
		for _, cp := range cps {
			if int(cp.Offset) > len(rec.Stream) {
				t.Fatalf("seg %d cut %d: folder %q checkpoint offset %d beyond surviving stream %d",
					si, cut, fname, cp.Offset, len(rec.Stream))
			}
		}
	}
}
