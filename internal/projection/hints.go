package projection

import (
	"encoding/json"
	"time"

	"eona/internal/journal"
)

// Hints is the I2A hint-feed read model: the latest poll result per source,
// so a restarted looking-glass node warm-starts its peer views from the
// journal instead of waiting out a poll interval, and historical queries
// can ask "what did we know at offset N". Sources are kept in
// first-observation order for a deterministic encoding.
type Hints struct {
	Base
	latest map[string]journal.PollRecord
	order  []string
	polls  uint64 // total poll records folded
}

// NewHints builds an empty hint feed.
func NewHints() *Hints {
	h := &Hints{}
	h.Reset()
	return h
}

func (h *Hints) Name() string { return "hints" }

func (h *Hints) Reset() {
	h.latest = make(map[string]journal.PollRecord)
	h.order = h.order[:0]
	h.polls = 0
}

// FoldPoll keeps the newest record per source (journal order — later
// records supersede earlier ones).
func (h *Hints) FoldPoll(pr journal.PollRecord) {
	if _, ok := h.latest[pr.Source]; !ok {
		h.order = append(h.order, pr.Source)
	}
	h.latest[pr.Source] = pr
	h.polls++
}

// Latest returns the newest folded poll for a source.
func (h *Hints) Latest(source string) (journal.PollRecord, bool) {
	pr, ok := h.latest[source]
	return pr, ok
}

// Sources returns the known sources in first-observation order.
func (h *Hints) Sources() []string { return append([]string(nil), h.order...) }

// Polls returns the total poll records folded.
func (h *Hints) Polls() uint64 { return h.polls }

func (h *Hints) EncodeState(buf []byte) []byte {
	buf = putUvarint(buf, h.polls)
	buf = putUvarint(buf, uint64(len(h.order)))
	for _, src := range h.order {
		pr := h.latest[src]
		buf = putStr(buf, src)
		buf = putI64(buf, pr.At.UnixNano())
		buf = putBytes(buf, pr.Data)
	}
	return buf
}

func (h *Hints) DecodeState(p []byte) error {
	r := &reader{b: p}
	polls := r.uvarint("hints poll count")
	n := r.uvarint("hints source count")
	latest := make(map[string]journal.PollRecord, n)
	var order []string
	for i := uint64(0); r.err == nil && i < n; i++ {
		src := r.str("hint source")
		at := r.i64("hint time")
		data := r.bytes("hint data")
		order = append(order, src)
		latest[src] = journal.PollRecord{Source: src, At: time.Unix(0, at).UTC(), Data: json.RawMessage(data)}
	}
	if err := r.done("hints state"); err != nil {
		return err
	}
	h.latest, h.order, h.polls = latest, order, polls
	return nil
}
