package projection

import (
	"eona/internal/netsim"
)

// UtilPoint is one sample of the link-utilization series: the network-wide
// mean and max link utilization (allocated rate / capacity) observed at the
// snapshot taken after OpIndex ops.
type UtilPoint struct {
	OpIndex  int
	MeanUtil float64
	MaxUtil  float64
	Links    int // links with positive capacity contributing to the means
}

// LinkUtil is the infrastructure-side read model: a utilization time series
// over the op log, sampled at every journaled network snapshot, plus live
// op-derived counters (ops folded, flow starts/stops, capacity edits). It
// is the projection an InfP looking glass charts without replaying history.
//
// Poison rule: an opaque-batch marker means ops stopped describing the
// network, so every op-derived number after it is suspect. The folder
// latches Poisoned and keeps folding — the series stays queryable, the flag
// tells consumers how far to trust it.
type LinkUtil struct {
	Base
	series   []UtilPoint
	ops      uint64
	starts   uint64
	stops    uint64
	capEdits uint64
	poisoned bool
}

// NewLinkUtil builds an empty utilization series.
func NewLinkUtil() *LinkUtil {
	l := &LinkUtil{}
	l.Reset()
	return l
}

func (l *LinkUtil) Name() string { return "linkutil" }

func (l *LinkUtil) Reset() {
	l.series = l.series[:0]
	l.ops, l.starts, l.stops, l.capEdits = 0, 0, 0, 0
	l.poisoned = false
}

func (l *LinkUtil) FoldOp(op netsim.Op, digest uint64) {
	l.ops++
	switch op.Kind {
	case netsim.OpStart:
		l.starts++
	case netsim.OpStop:
		l.stops++
	case netsim.OpSetLinkCapacity:
		l.capEdits++
	}
}

// FoldSnapshot samples utilization from the snapshot's recorded link rates
// and capacities — rates are allocator outputs the fold could not recompute
// itself, which is exactly why the series samples at snapshot records.
func (l *LinkUtil) FoldSnapshot(opIndex int, st *netsim.NetState) {
	pt := UtilPoint{OpIndex: opIndex}
	for i, cap := range st.Capacities {
		if cap <= 0 || i >= len(st.LinkRates) {
			continue
		}
		util := st.LinkRates[i] / cap
		pt.MeanUtil += util
		if util > pt.MaxUtil {
			pt.MaxUtil = util
		}
		pt.Links++
	}
	if pt.Links > 0 {
		pt.MeanUtil /= float64(pt.Links)
	}
	l.series = append(l.series, pt)
}

func (l *LinkUtil) FoldOpaque() { l.poisoned = true }

// Series returns the sampled utilization points in journal order.
func (l *LinkUtil) Series() []UtilPoint { return append([]UtilPoint(nil), l.series...) }

// Ops, Starts, Stops and CapacityEdits are the folded op counters.
func (l *LinkUtil) Ops() uint64 { return l.ops }

// Starts returns the number of flow-start ops folded.
func (l *LinkUtil) Starts() uint64 { return l.starts }

// Stops returns the number of flow-stop ops folded.
func (l *LinkUtil) Stops() uint64 { return l.stops }

// CapacityEdits returns the number of capacity-edit ops folded.
func (l *LinkUtil) CapacityEdits() uint64 { return l.capEdits }

// Poisoned reports whether an opaque-batch marker was folded: op-derived
// numbers past that point do not describe the real network.
func (l *LinkUtil) Poisoned() bool { return l.poisoned }

func (l *LinkUtil) EncodeState(buf []byte) []byte {
	buf = putUvarint(buf, l.ops)
	buf = putUvarint(buf, l.starts)
	buf = putUvarint(buf, l.stops)
	buf = putUvarint(buf, l.capEdits)
	if l.poisoned {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = putUvarint(buf, uint64(len(l.series)))
	for _, pt := range l.series {
		buf = putUvarint(buf, uint64(pt.OpIndex))
		buf = putF64(buf, pt.MeanUtil)
		buf = putF64(buf, pt.MaxUtil)
		buf = putUvarint(buf, uint64(pt.Links))
	}
	return buf
}

func (l *LinkUtil) DecodeState(p []byte) error {
	r := &reader{b: p}
	ops := r.uvarint("linkutil ops")
	starts := r.uvarint("linkutil starts")
	stops := r.uvarint("linkutil stops")
	capEdits := r.uvarint("linkutil capacity edits")
	var poisoned bool
	if r.err == nil {
		if len(r.b) == 0 {
			r.fail("linkutil poisoned flag")
		} else {
			poisoned = r.b[0] != 0
			r.b = r.b[1:]
		}
	}
	n := r.uvarint("linkutil point count")
	var series []UtilPoint
	for i := uint64(0); r.err == nil && i < n; i++ {
		var pt UtilPoint
		pt.OpIndex = int(r.uvarint("linkutil point op index"))
		pt.MeanUtil = r.f64("linkutil point mean")
		pt.MaxUtil = r.f64("linkutil point max")
		pt.Links = int(r.uvarint("linkutil point links"))
		series = append(series, pt)
	}
	if err := r.done("linkutil state"); err != nil {
		return err
	}
	l.ops, l.starts, l.stops, l.capEdits = ops, starts, stops, capEdits
	l.poisoned = poisoned
	l.series = series
	return nil
}
