// Package projection is the read-model half of the durability layer: the
// actualizer pattern over internal/journal's event log. A Folder is a pure
// fold — it consumes journal records in stream order and maintains derived
// state (QoE rollups, I2A hint feeds, engagement projections,
// link-utilization series) that live queries read in O(1) instead of
// recomputing from history. The Engine routes every appended record through
// the journal writer and then through each folder under one lock, so fold
// order equals journal order by construction, and periodically commits each
// folder's encoded state as a checkpoint frame carrying the offset it is
// durable through. A restarted node Resumes from (checkpoint state,
// committed offset) and folds only the record tail — O(checkpoint delta),
// not O(history) — and MaterializeAt rebuilds the read models at any
// journaled offset for time-travel queries.
//
// Contract (see DESIGN.md §5):
//
//   - Offset commit vs data durability: a checkpoint frame carries (state,
//     offset, fingerprint) under one CRC and is appended *after* the
//     records it covers, in the same log. The offset is therefore always a
//     low-water mark — a crash can lose a checkpoint (fall back to the
//     previous one and refold the tail; folds are deterministic, so
//     refolding is harmless) but can never persist an offset ahead of its
//     data.
//   - Checkpoint cadence bounds recovery: with CheckpointEvery = k, resume
//     refolds at most k records per folder plus whatever trailed the last
//     checkpoint. E17 measures exactly this.
//   - Poison rule: an opaque-batch marker (a Batch the journal could not
//     capture op-by-op) poisons every op-derived read model from that point
//     on. Folders that depend on op replay latch Poisoned and say so in
//     their queries; ingest/poll-derived folders are unaffected.
package projection

import (
	"fmt"
	"sync"

	"eona/internal/core"
	"eona/internal/faults"
	"eona/internal/journal"
	"eona/internal/netsim"
)

// Folder is one incremental read model: a deterministic fold over the
// journal's record stream. Folds never fail — a folder that cannot use a
// record ignores it — and EncodeState is canonical: two folders that folded
// the same stream encode identical bytes, which is what makes checkpoint
// fingerprints and differential tests meaningful.
type Folder interface {
	// Name keys this folder's checkpoints in the journal. Stable across
	// restarts; one journal must not carry two folders with one name.
	Name() string
	// Reset returns the folder to its empty (nothing folded) state.
	Reset()
	// FoldTopo consumes the topology record.
	FoldTopo(ts netsim.TopoState)
	// FoldOp consumes one committed netsim op and its post-apply digest.
	FoldOp(op netsim.Op, digest uint64)
	// FoldSnapshot consumes a network snapshot taken after opIndex ops.
	FoldSnapshot(opIndex int, st *netsim.NetState)
	// FoldIngest consumes one A2I session record.
	FoldIngest(rec core.QoERecord)
	// FoldPoll consumes one looking-glass poll result.
	FoldPoll(pr journal.PollRecord)
	// FoldFault consumes one fault-plan event.
	FoldFault(ev faults.Event)
	// FoldOpaque consumes an opaque-batch marker (see the poison rule).
	FoldOpaque()
	// EncodeState appends the folder's state to buf and returns it.
	EncodeState(buf []byte) []byte
	// DecodeState replaces the folder's state with a previously encoded
	// one.
	DecodeState(p []byte) error
}

// Base is a no-op fold for embedding: a folder overrides the records it
// consumes and inherits ignores for the rest.
type Base struct{}

func (Base) FoldTopo(netsim.TopoState)          {}
func (Base) FoldOp(netsim.Op, uint64)           {}
func (Base) FoldSnapshot(int, *netsim.NetState) {}
func (Base) FoldIngest(core.QoERecord)          {}
func (Base) FoldPoll(journal.PollRecord)        {}
func (Base) FoldFault(faults.Event)             {}
func (Base) FoldOpaque()                        {}

// StateDigest fingerprints a folder's current state — the value a
// checkpoint frame records, and the equality differential tests compare.
func StateDigest(f Folder) uint64 {
	return journal.Fingerprint(f.EncodeState(nil))
}

// DefaultCheckpointEvery is the checkpoint cadence (in folded records) when
// Config.CheckpointEvery is zero.
const DefaultCheckpointEvery = 64

// Config parameterizes NewEngine.
type Config struct {
	// Writer is the journal the engine appends through. Nil runs the
	// engine fold-only: records fold into the read models but nothing is
	// persisted (benchmarks, ephemeral nodes).
	Writer *journal.Writer
	// CheckpointEvery commits each folder's checkpoint after this many
	// folded records (default DefaultCheckpointEvery). Ignored when
	// Writer is nil.
	CheckpointEvery int
}

// Engine owns a folder set and keeps fold order equal to journal order:
// every record is appended to the journal and folded into each folder under
// one lock. All appends must route through the engine — a record written
// directly to the shared Writer would be journaled but never folded, and
// the read models would silently diverge from the log.
//
// Engine implements netsim.OpSink and faults.Sink, so it drops into every
// slot the bare Writer used to fill.
type Engine struct {
	mu      sync.RWMutex
	w       *journal.Writer
	folders []Folder
	every   int
	since   int // records folded since the last checkpoint
	ops     int // op records folded (stamps live snapshot folds)
	buf     []byte
}

// NewEngine builds an engine folding into folders. Folder names must be
// unique — they key checkpoint frames.
func NewEngine(cfg Config, folders ...Folder) (*Engine, error) {
	seen := make(map[string]bool, len(folders))
	for _, f := range folders {
		if seen[f.Name()] {
			return nil, fmt.Errorf("projection: duplicate folder name %q", f.Name())
		}
		seen[f.Name()] = true
	}
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	return &Engine{w: cfg.Writer, folders: folders, every: every}, nil
}

// Read runs fn holding the engine's read lock: queries against folder state
// are consistent with concurrent appends. fn must not call engine append
// methods.
func (e *Engine) Read(fn func()) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	fn()
}

// Err surfaces the journal writer's latched error, nil in fold-only mode.
// Folding continues past a write error — the read models stay live even
// when the disk is gone — so operators check Err, like faults.Sink users
// always have.
func (e *Engine) Err() error {
	if e.w == nil {
		return nil
	}
	return e.w.Err()
}

// folded accounts one folded record and commits checkpoints on cadence.
// Callers hold e.mu.
func (e *Engine) folded() {
	e.since++
	if e.w == nil || e.since < e.every {
		return
	}
	e.checkpointLocked()
}

// checkpointLocked commits every folder's state. The data records each
// folder has folded are already in the log (appends happen before folds
// under the same lock), so the offset the writer assigns is a true
// low-water mark.
func (e *Engine) checkpointLocked() {
	for _, f := range e.folders {
		e.buf = f.EncodeState(e.buf[:0])
		_ = e.w.AppendCheckpoint(f.Name(), e.buf)
	}
	e.since = 0
}

// Checkpoint commits every folder's state now, regardless of cadence — for
// shutdown paths that want the next boot's tail empty. No-op in fold-only
// mode.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.w == nil {
		return nil
	}
	e.checkpointLocked()
	return e.w.Err()
}

// AppendTopology journals and folds the topology record.
func (e *Engine) AppendTopology(ts netsim.TopoState) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if e.w != nil {
		err = e.w.AppendTopology(ts)
	}
	for _, f := range e.folders {
		f.FoldTopo(ts)
	}
	e.folded()
	return err
}

// AppendOp implements netsim.OpSink.
func (e *Engine) AppendOp(op netsim.Op, digest uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if e.w != nil {
		err = e.w.AppendOp(op, digest)
	}
	for _, f := range e.folders {
		f.FoldOp(op, digest)
	}
	e.ops++
	e.folded()
	return err
}

// AppendSnapshot implements netsim.OpSink.
func (e *Engine) AppendSnapshot(st netsim.NetState, digest uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if e.w != nil {
		err = e.w.AppendSnapshot(st, digest)
	}
	for _, f := range e.folders {
		f.FoldSnapshot(e.ops, &st)
	}
	e.folded()
	return err
}

// AppendOpaque implements netsim.OpSink.
func (e *Engine) AppendOpaque() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if e.w != nil {
		err = e.w.AppendOpaque()
	}
	for _, f := range e.folders {
		f.FoldOpaque()
	}
	e.folded()
	return err
}

// AppendFault implements faults.Sink.
func (e *Engine) AppendFault(ev faults.Event) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if e.w != nil {
		err = e.w.AppendFault(ev)
	}
	for _, f := range e.folders {
		f.FoldFault(ev)
	}
	e.folded()
	return err
}

// AppendIngest journals and folds one A2I session record.
func (e *Engine) AppendIngest(rec core.QoERecord) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if e.w != nil {
		err = e.w.AppendIngest(rec)
	}
	for _, f := range e.folders {
		f.FoldIngest(rec)
	}
	e.folded()
	return err
}

// AppendPoll journals and folds one looking-glass poll result.
func (e *Engine) AppendPoll(pr journal.PollRecord) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if e.w != nil {
		err = e.w.AppendPoll(pr)
	}
	for _, f := range e.folders {
		f.FoldPoll(pr)
	}
	e.folded()
	return err
}

var _ netsim.OpSink = (*Engine)(nil)
var _ faults.Sink = (*Engine)(nil)

// ResumeStats reports what Resume did per folder: how many tail records
// were folded on top of the recovered checkpoint (TailFolded == total
// stream length means no checkpoint survived and the folder refolded
// everything).
type ResumeStats struct {
	TailFolded map[string]int
}

// Resume rebuilds every folder from a recovered journal: the newest
// surviving checkpoint is decoded and verified (the decoded state must
// re-encode to the recorded fingerprint, so schema drift is caught loudly,
// not folded over), then the record tail past its committed offset is
// folded. A folder with no checkpoint refolds the whole stream. Cost per
// folder is O(tail), bounded by the checkpoint cadence — the whole point.
func (e *Engine) Resume(rec *journal.Recovered) (ResumeStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	stats := ResumeStats{TailFolded: make(map[string]int, len(e.folders))}
	for _, f := range e.folders {
		from := 0
		f.Reset()
		if cp, ok := rec.LatestCheckpoint(f.Name()); ok {
			if err := f.DecodeState(cp.State); err != nil {
				return stats, fmt.Errorf("projection: resume %q: %w", f.Name(), err)
			}
			e.buf = f.EncodeState(e.buf[:0])
			if got := journal.Fingerprint(e.buf); got != cp.Digest {
				return stats, fmt.Errorf("projection: resume %q: decoded state re-encodes to %016x, checkpoint recorded %016x (folder schema drift?)", f.Name(), got, cp.Digest)
			}
			from = int(cp.Offset)
		}
		if err := foldStream(rec, f, from, len(rec.Stream)); err != nil {
			return stats, fmt.Errorf("projection: resume %q: %w", f.Name(), err)
		}
		stats.TailFolded[f.Name()] = len(rec.Stream) - from
	}
	e.ops = len(rec.Ops)
	e.since = 0
	return stats, nil
}
