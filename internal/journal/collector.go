package journal

import "eona/internal/core"

// journaledCollector wraps an A2ICollector so every ingest is appended to
// the journal before it reaches the inner collector: on restart, replaying
// the recovered ingest stream rebuilds the collector's rollups exactly.
// Query methods pass through untouched.
type journaledCollector struct {
	core.A2ICollector
	w *Writer
}

// WrapCollector returns a collector that journals every ingest into w and
// then forwards it to inner. Append errors latch on the writer (Err) —
// ingest itself never fails, matching the A2ICollector contract.
func WrapCollector(inner core.A2ICollector, w *Writer) core.A2ICollector {
	return &journaledCollector{A2ICollector: inner, w: w}
}

func (c *journaledCollector) Ingest(rec core.QoERecord) {
	_ = c.w.AppendIngest(rec)
	c.A2ICollector.Ingest(rec)
}

func (c *journaledCollector) IngestBatch(recs []core.QoERecord) {
	for _, rec := range recs {
		_ = c.w.AppendIngest(rec)
	}
	c.A2ICollector.IngestBatch(recs)
}
