// Package journal is the crash-safe event journal: an append-only,
// CRC32C-framed binary log that persists netsim ops, fault-plan events and
// A2I collector ingests, with periodic state snapshots so a restarted node
// recovers by loading the latest snapshot and replaying only the tail.
//
// Durability contract (see DESIGN.md §5 for the full statement):
//
//   - Every record is one length-prefixed frame whose CRC32C covers the
//     record type and payload. A frame is either wholly valid or ignored.
//   - A torn or corrupt tail — the suffix left by a crash mid-write — is
//     detected by the first frame that fails its length or checksum and is
//     truncated at the last valid frame boundary. It never poisons
//     recovery: everything before the tear is intact by CRC, everything
//     after it is discarded.
//   - Recovery = latest snapshot + replay of the op tail behind it. With
//     no snapshot, replay runs from the first op. Both paths are pinned
//     bit-identical to an uninterrupted run by the crash-injection tests.
//
// The log is segmented (journal-NNNNNN.eoj); the writer rotates segments at
// a size bound and fsyncs per the configured SyncPolicy.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Frame layout, little-endian:
//
//	[0:4)  payload length N (uint32)
//	[4:8)  CRC32C over bytes [8, 9+N) — the type byte and payload
//	[8]    record type
//	[9:9+N) payload
const frameHeader = 9

// MaxFrame bounds a frame's payload length. A length prefix above it is
// treated as corruption (an "oversized length prefix" is far more likely a
// torn write than a 16 MiB record), so a flipped length byte cannot make
// recovery attempt a giant allocation.
const MaxFrame = 16 << 20

// segMagic opens every segment file, so recovery cannot misread an
// arbitrary file as a journal. The trailing byte is the format version.
var segMagic = []byte("EONAJ\x00\x001")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn reports a torn or corrupt frame: the scanner hit bytes that are
// not a complete, checksummed frame. Everything before the reported offset
// is valid; everything at and after it is the crash tail.
var ErrTorn = errors.New("journal: torn or corrupt frame")

// appendFrame appends one framed record to buf and returns the extended
// buffer.
func appendFrame(buf []byte, typ byte, payload []byte) []byte {
	if len(payload) > MaxFrame {
		panic(fmt.Sprintf("journal: %d-byte record exceeds MaxFrame", len(payload)))
	}
	// The header is built in buf itself rather than a local array: crc32's
	// dispatch is an indirect call, and handing it a stack array would force
	// that array to the heap — one allocation per record.
	off := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0, typ)
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, buf[off+8:off+9])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(buf[off+4:off+8], crc)
	return append(buf, payload...)
}

// scanFrame parses the frame at data[off:]. It returns the record type, the
// payload (aliasing data — callers copy if they retain it), and the offset
// of the next frame. A frame that is incomplete or fails its checksum
// returns ErrTorn; off == len(data) returns io-free (0, nil, off, errEOF).
var errEOF = errors.New("journal: end of segment")

func scanFrame(data []byte, off int) (typ byte, payload []byte, next int, err error) {
	if off == len(data) {
		return 0, nil, off, errEOF
	}
	if off > len(data) || len(data)-off < frameHeader {
		return 0, nil, off, ErrTorn
	}
	n := binary.LittleEndian.Uint32(data[off : off+4])
	if n > MaxFrame {
		return 0, nil, off, ErrTorn
	}
	end := off + frameHeader + int(n)
	if end > len(data) {
		return 0, nil, off, ErrTorn
	}
	want := binary.LittleEndian.Uint32(data[off+4 : off+8])
	crc := crc32.Update(0, crcTable, data[off+8:end])
	if crc != want {
		return 0, nil, off, ErrTorn
	}
	return data[off+8], data[off+frameHeader : end], end, nil
}

// FrameBoundaries returns every offset in one segment's bytes that lies on
// a frame boundary: just after the magic, then after each complete frame.
// Crash-injection sweeps (here and in consumers like internal/projection)
// cut the file at and between these offsets to simulate a kill mid-write. A
// torn tail stops the walk; the returned offsets cover the valid prefix.
func FrameBoundaries(data []byte) []int {
	if len(data) < len(segMagic) {
		return nil
	}
	bounds := []int{len(segMagic)}
	off := len(segMagic)
	for {
		_, _, next, err := scanFrame(data, off)
		if err != nil {
			return bounds
		}
		bounds = append(bounds, next)
		off = next
	}
}

// SegmentPaths lists a journal directory's segment files, oldest first, as
// full paths. A missing directory yields an empty list like Recover does.
func SegmentPaths(dir string) ([]string, error) {
	segs, err := segmentFiles(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	paths := make([]string, len(segs))
	for i, name := range segs {
		paths[i] = filepath.Join(dir, name)
	}
	return paths, nil
}

// scanSegment walks every frame in a segment's bytes (after the magic
// header) calling fn per record. It returns the number of valid bytes — the
// truncation point on a torn tail — and ErrTorn when the segment ends in a
// tear rather than cleanly. A segment missing its magic is torn at offset
// zero.
func scanSegment(data []byte, fn func(typ byte, payload []byte) error) (valid int, err error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic) {
		return 0, fmt.Errorf("%w: bad segment magic", ErrTorn)
	}
	off := len(segMagic)
	for {
		typ, payload, next, serr := scanFrame(data, off)
		if serr == errEOF {
			return off, nil
		}
		if serr != nil {
			return off, serr
		}
		if fn != nil {
			if ferr := fn(typ, payload); ferr != nil {
				return off, ferr
			}
		}
		off = next
	}
}
