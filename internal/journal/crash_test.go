package journal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"eona/internal/core"
	"eona/internal/netsim"
)

// segBytes reads every segment of a finished journal, in order.
func segBytes(t *testing.T, dir string) [][]byte {
	t.Helper()
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, len(segs))
	for i, name := range segs {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		data[i] = b
	}
	return data
}

// frameBoundaries returns every valid cut offset inside one segment that
// lies on a frame boundary: just after the magic, and after each frame.
func frameBoundaries(t *testing.T, data []byte) []int {
	t.Helper()
	bounds := []int{len(segMagic)}
	off := len(segMagic)
	for {
		_, _, next, err := scanFrame(data, off)
		if err != nil {
			if err != errEOF {
				t.Fatalf("full segment scans torn: %v", err)
			}
			return bounds
		}
		bounds = append(bounds, next)
		off = next
	}
}

// writeCrashCopy materializes the journal as a crash at (seg, off) would
// have left it: all earlier segments complete, segment seg cut at off,
// later segments nonexistent (the write head had not reached them).
func writeCrashCopy(t *testing.T, segs [][]byte, seg, off int) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < seg; i++ {
		if err := os.WriteFile(filepath.Join(dir, segName(i)), segs[i], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, segName(seg)), segs[seg][:off], 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// checkCrashRecovery recovers a crash copy and pins the durability
// contract: recovery never errors, the op prefix it yields replays — via
// snapshot + catch-up when a snapshot survived — to a state bit-identical
// to a from-scratch serial replay of that prefix, and every digest matches
// what the uninterrupted run recorded (RecoverNetwork verifies per op).
// It also pins the checkpoint/offset invariants: a surviving checkpoint's
// offset never exceeds the recovered stream, offsets are nondecreasing per
// folder, and a checkpoint never claims coverage of ingests that did not
// survive below it (the fold-then-checkpoint append order makes the offset
// a true low-water mark).
func checkCrashRecovery(t *testing.T, crashDir string, totalOps, totalIngests int) {
	t.Helper()
	rec, err := Recover(crashDir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rec.Ops) > totalOps {
		t.Fatalf("recovered %d ops from a prefix of a %d-op run", len(rec.Ops), totalOps)
	}
	if len(rec.Ingests) > totalIngests {
		t.Fatalf("recovered %d ingests from a prefix of a %d-ingest run", len(rec.Ingests), totalIngests)
	}
	// The surviving ingests must be an exact prefix of the appended
	// sequence (append order, no holes).
	for i, ir := range rec.Ingests {
		if want := fmt.Sprintf("crash-%03d", i); ir.SessionID != want {
			t.Fatalf("ingest %d is %q, want prefix order %q", i, ir.SessionID, want)
		}
	}
	for name, cps := range rec.Checkpoints {
		prev := uint64(0)
		for i, cp := range cps {
			if cp.Offset > uint64(len(rec.Stream)) {
				t.Fatalf("checkpoint %q[%d] offset %d beyond stream %d", name, i, cp.Offset, len(rec.Stream))
			}
			if cp.Offset < prev {
				t.Fatalf("checkpoint %q[%d] offset %d below predecessor %d", name, i, cp.Offset, prev)
			}
			prev = cp.Offset
			// The crashfold state records how many ingests the checkpoint
			// covers; all of them must have survived below it.
			if name == "crashfold" {
				claimed, err := strconv.Atoi(string(cp.State))
				if err != nil {
					t.Fatalf("checkpoint %q[%d] state %q: %v", name, i, cp.State, err)
				}
				if claimed > len(rec.Ingests) {
					t.Fatalf("checkpoint %q[%d] covers %d ingests, only %d survived", name, i, claimed, len(rec.Ingests))
				}
			}
		}
	}
	if rec.Topo == nil {
		// Cut before the topology record finished: nothing to rebuild.
		if len(rec.Ops) != 0 {
			t.Fatalf("ops recovered without a topology: %d", len(rec.Ops))
		}
		return
	}
	got, _, err := rec.RecoverNetwork()
	if err != nil {
		t.Fatalf("recover network: %v", err)
	}
	mirror := netsim.NewNetwork(rec.Topo.Build())
	ops := make([]netsim.Op, len(rec.Ops))
	for i, or := range rec.Ops {
		ops[i] = or.Op
	}
	if err := netsim.Replay(mirror, ops); err != nil {
		t.Fatalf("mirror replay: %v", err)
	}
	requireSameNetworks(t, "recovered vs uninterrupted prefix", got, mirror)
}

// TestCrashAtEveryRecordBoundary is the crash-injection sweep: on every
// topology fixture, with and without snapshots, simulate a kill at every
// record boundary of the journal — plus seeded random mid-record offsets —
// and require recovery to rebuild a state bit-identical to the
// uninterrupted run at that point.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	for name, build := range fixtures() {
		for _, snapEvery := range []int{0, 8} {
			build, snapEvery := build, snapEvery
			sub := name + "/snap0"
			if snapEvery > 0 {
				sub = name + "/snap8"
			}
			t.Run(sub, func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				// Small segments force rotation, so cuts land in every
				// segment position; SyncNever keeps the sweep fast (sync
				// policy does not change the byte stream).
				w, err := Open(Config{Dir: dir, SegmentBytes: 2 << 10, Sync: SyncNever})
				if err != nil {
					t.Fatal(err)
				}
				net, paths, ts := build()
				if err := w.AppendTopology(ts); err != nil {
					t.Fatal(err)
				}
				_, ops := driveJournaled(t, w, net, paths, int64(31+snapEvery), snapEvery)
				// Tail of interleaved ingests and projection checkpoints, so
				// the sweep also cuts inside and between recIngest/recProjCkpt
				// frames. Each checkpoint's state records the ingest count it
				// covers — the offset-commit invariant checkCrashRecovery
				// verifies on every prefix.
				ingests := 0
				for cr := 0; cr < 3; cr++ {
					for k := 0; k < 4; k++ {
						err := w.AppendIngest(core.QoERecord{
							SessionID: fmt.Sprintf("crash-%03d", ingests),
							AppP:      "appp-crash", ClientISP: "isp-a",
							CDN: "cdnX", Cluster: "c1", Score: float64(ingests),
						})
						if err != nil {
							t.Fatal(err)
						}
						ingests++
					}
					if err := w.AppendCheckpoint("crashfold", []byte(strconv.Itoa(ingests))); err != nil {
						t.Fatal(err)
					}
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				segs := segBytes(t, dir)
				if len(segs) < 2 {
					t.Fatalf("want rotation in the sweep, got %d segment(s)", len(segs))
				}

				rng := rand.New(rand.NewSource(int64(len(ops))))
				for si, data := range segs {
					bounds := frameBoundaries(t, data)
					cuts := append([]int(nil), bounds...)
					// A few seeded mid-record offsets per segment: strictly
					// inside a frame, torn tail guaranteed.
					for k := 0; k < 5 && len(bounds) > 1; k++ {
						bi := rng.Intn(len(bounds) - 1)
						lo, hi := bounds[bi], bounds[bi+1]
						cuts = append(cuts, lo+1+rng.Intn(hi-lo-1))
					}
					// And the degenerate cuts: empty file, mid-magic.
					cuts = append(cuts, 0, len(segMagic)-2)
					for _, off := range cuts {
						crashDir := writeCrashCopy(t, segs, si, off)
						checkCrashRecovery(t, crashDir, len(ops), ingests)
					}
				}
			})
		}
	}
}

// TestOpenRepairsTornTail: Open on a crashed journal truncates the torn
// tail in place and the repaired journal accepts appends that a second
// recovery then sees — the full crash/restart/continue cycle.
func TestOpenRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	net, paths, ts := fixtures()["line"]()
	if err := w.AppendTopology(ts); err != nil {
		t.Fatal(err)
	}
	driveJournaled(t, w, net, paths, 8, 4)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segBytes(t, dir)
	last := len(segs) - 1
	bounds := frameBoundaries(t, segs[last])
	// Tear mid-way through the last segment's final frame.
	tearAt := bounds[len(bounds)-2] + 3
	path := filepath.Join(dir, segName(last))
	if err := os.Truncate(path, int64(tearAt)); err != nil {
		t.Fatal(err)
	}

	before, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if before.TruncatedBytes == 0 {
		t.Fatal("tear not visible to recovery")
	}

	w2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Ops(); got != uint64(len(before.Ops)) {
		t.Fatalf("repaired op count %d, recovery saw %d", got, len(before.Ops))
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(bounds[len(bounds)-2]) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", st.Size(), bounds[len(bounds)-2])
	}
	if err := w2.AppendOpaque(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after.TruncatedBytes != 0 || !after.Opaque || len(after.Ops) != len(before.Ops) {
		t.Fatalf("post-repair recovery: %d ops, truncated %d, opaque %v", len(after.Ops), after.TruncatedBytes, after.Opaque)
	}
}

// TestTornMiddleSegmentDropsLater: a tear in a non-final segment (crash
// mid-rotation, or later corruption) invalidates everything after it —
// Recover counts the dropped segments and Open deletes them.
func TestTornMiddleSegmentDropsLater(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir, SegmentBytes: 1 << 10, Sync: SyncRotate})
	if err != nil {
		t.Fatal(err)
	}
	net, paths, ts := fixtures()["mesh"]()
	if err := w.AppendTopology(ts); err != nil {
		t.Fatal(err)
	}
	driveJournaled(t, w, net, paths, 21, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Corrupt a frame in the middle segment by flipping a payload byte
	// (CRC now fails there).
	mid := len(segs) / 2
	path := filepath.Join(dir, segs[mid])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+frameHeader] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.DroppedSegments != len(segs)-mid-1 {
		t.Fatalf("dropped %d segments, want %d", rec.DroppedSegments, len(segs)-mid-1)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("tear bytes not counted")
	}
	if _, _, err := rec.RecoverNetwork(); err != nil {
		t.Fatalf("prefix before mid-log tear must recover: %v", err)
	}

	w2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	left, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != mid+1 {
		t.Fatalf("Open left %d segments, want %d", len(left), mid+1)
	}
	if got := w2.Ops(); got != uint64(len(rec.Ops)) {
		t.Fatalf("repaired op count %d, recovery saw %d", got, len(rec.Ops))
	}
}
