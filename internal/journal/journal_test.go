package journal

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"eona/internal/core"
	"eona/internal/faults"
	"eona/internal/netsim"
	"eona/internal/sim"
)

// fixtures builds the journal test topologies through the public netsim
// API: every shape the crash sweep runs over, as (fresh network, candidate
// paths, topology-as-data) builders.
func fixtures() map[string]func() (*netsim.Network, []netsim.Path, netsim.TopoState) {
	build := func(mk func(t *netsim.Topology) []netsim.Path) func() (*netsim.Network, []netsim.Path, netsim.TopoState) {
		return func() (*netsim.Network, []netsim.Path, netsim.TopoState) {
			topo := netsim.NewTopology()
			paths := mk(topo)
			return netsim.NewNetwork(topo), paths, netsim.ExportTopology(topo)
		}
	}
	return map[string]func() (*netsim.Network, []netsim.Path, netsim.TopoState){
		"line": build(func(t *netsim.Topology) []netsim.Path {
			a := t.AddLink("a", "b", 100, time.Millisecond, "")
			b := t.AddLink("b", "c", 80, time.Millisecond, "")
			c := t.AddLink("c", "d", 120, time.Millisecond, "")
			return []netsim.Path{{a, b, c}, {a}, {b, c}}
		}),
		"hub": build(func(t *netsim.Topology) []netsim.Path {
			hub := t.AddLink("hubA", "hubB", 1000, time.Millisecond, "")
			ps := []netsim.Path{{hub}}
			for _, n := range []string{"a", "b", "c", "d"} {
				l := t.AddLink(netsim.NodeID(n), "hubA", 90, time.Millisecond, "")
				ps = append(ps, netsim.Path{l}, netsim.Path{l, hub})
			}
			return ps
		}),
		"mesh": build(func(t *netsim.Topology) []netsim.Path {
			ab := t.AddLink("a", "b", 150, time.Millisecond, "core")
			bc := t.AddLink("b", "c", 60, 2*time.Millisecond, "edge")
			ac := t.AddLink("a", "c", 200, time.Millisecond, "express")
			cd := t.AddLink("c", "d", 90, time.Millisecond, "")
			return []netsim.Path{{ab, bc}, {ac}, {ab, bc, cd}, {ac, cd}, {bc}}
		}),
	}
}

// driveJournaled runs the canonical seeded multi-driver workload against a
// deterministic SharedNetwork journaling into w, and returns the final
// network plus the recorded op log.
func driveJournaled(t *testing.T, w *Writer, net *netsim.Network, paths []netsim.Path, seed int64, snapshotEvery int) (*netsim.Network, []netsim.Op) {
	t.Helper()
	const drivers, rounds, opsPerRound = 3, 4, 8
	s := netsim.NewShared(net, netsim.SharedConfig{
		Deterministic: true, Record: true,
		Journal: w, SnapshotEvery: snapshotEvery,
	})
	drv := make([]*netsim.Driver, drivers)
	handles := make([][]*netsim.Flow, drivers)
	for d := range drv {
		drv[d] = s.Driver(uint64(d + 1))
	}
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for d := 0; d < drivers; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*1_000_000 + int64(d)*1_000 + int64(r)))
				h := handles[d]
				for k := 0; k < opsPerRound; k++ {
					op := rng.Intn(6)
					if len(h) == 0 {
						op = 0
					}
					pi := rng.Intn(len(paths))
					val := float64(1 + rng.Intn(300))
					if rng.Intn(6) == 0 {
						val = math.Inf(1)
					}
					switch op {
					case 0:
						h = append(h, drv[d].StartFlow(paths[pi], val, "journaled"))
					case 1:
						drv[d].StopFlow(h[rng.Intn(len(h))])
					case 2:
						drv[d].SetDemand(h[rng.Intn(len(h))], val)
					case 3:
						drv[d].SetWeight(h[rng.Intn(len(h))], float64(1+rng.Intn(4)))
					case 4:
						drv[d].SetPath(h[rng.Intn(len(h))], paths[pi])
					case 5:
						p := paths[pi]
						drv[d].SetLinkCapacity(p[rng.Intn(len(p))].ID, float64(50+rng.Intn(200)))
					}
				}
				handles[d] = h
			}(d)
		}
		wg.Wait()
		s.Commit()
	}
	final := s.Close()
	if err := s.JournalError(); err != nil {
		t.Fatalf("journal error during drive: %v", err)
	}
	ops, complete := s.Log()
	if !complete {
		t.Fatal("op log incomplete without any opaque Batch")
	}
	return final, ops
}

// requireSameNetworks asserts two networks agree bit for bit through the
// public snapshot surface, plus matching state digests.
func requireSameNetworks(t *testing.T, label string, a, b *netsim.Network) {
	t.Helper()
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.NumFlows() != sb.NumFlows() {
		t.Fatalf("%s: %d flows vs %d", label, sa.NumFlows(), sb.NumFlows())
	}
	for id := 0; id < a.Topology().NumLinks(); id++ {
		l := netsim.LinkID(id)
		if sa.LinkRate(l) != sb.LinkRate(l) {
			t.Fatalf("%s: link %d rate %v != %v", label, id, sa.LinkRate(l), sb.LinkRate(l))
		}
		if sa.Headroom(l) != sb.Headroom(l) {
			t.Fatalf("%s: link %d headroom %v != %v", label, id, sa.Headroom(l), sb.Headroom(l))
		}
	}
	sa.Flows(func(v netsim.FlowView) {
		w, ok := sb.Flow(v.ID)
		if !ok {
			t.Fatalf("%s: flow %d missing", label, v.ID)
		}
		if v != w {
			t.Fatalf("%s: flow %d %+v != %+v", label, v.ID, v, w)
		}
	})
	if da, db := a.StateDigest(), b.StateDigest(); da != db {
		t.Fatalf("%s: digest %016x != %016x", label, da, db)
	}
}

// TestJournalRecoverRoundTrip: drive a journaled run on every fixture, then
// recover from disk alone and require the rebuilt network bit-identical to
// the live final state — with and without snapshots in the log.
func TestJournalRecoverRoundTrip(t *testing.T) {
	for name, build := range fixtures() {
		for _, snapEvery := range []int{0, 8} {
			build := build
			sub := name + "/snap0"
			if snapEvery > 0 {
				sub = name + "/snap8"
			}
			t.Run(sub, func(t *testing.T) {
				dir := t.TempDir()
				w, err := Open(Config{Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				net, paths, ts := build()
				if err := w.AppendTopology(ts); err != nil {
					t.Fatal(err)
				}
				final, ops := driveJournaled(t, w, net, paths, 42, snapEvery)
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}

				rec, err := Recover(dir)
				if err != nil {
					t.Fatal(err)
				}
				if len(rec.Ops) != len(ops) {
					t.Fatalf("recovered %d ops, drove %d", len(rec.Ops), len(ops))
				}
				if snapEvery > 0 && rec.Snapshot == nil {
					t.Fatal("no snapshot recovered despite SnapshotEvery")
				}
				if rec.TruncatedBytes != 0 || rec.DroppedSegments != 0 {
					t.Fatalf("clean log reported truncation: %+v", rec)
				}
				got, replayed, err := rec.RecoverNetwork()
				if err != nil {
					t.Fatal(err)
				}
				if rec.Snapshot != nil && replayed != len(ops)-rec.Snapshot.OpIndex {
					t.Fatalf("replayed %d tail ops, want %d", replayed, len(ops)-rec.Snapshot.OpIndex)
				}
				requireSameNetworks(t, "recovered vs live", got, final)

				if d, err := rec.Bisect(); err != nil || d != nil {
					t.Fatalf("clean journal bisected to %v, %v", d, err)
				}
			})
		}
	}
}

// TestJournalRotation pins segment rotation: a small segment bound produces
// several segments and recovery stitches them back together losslessly.
func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir, SegmentBytes: 512, Sync: SyncRotate})
	if err != nil {
		t.Fatal(err)
	}
	net, paths, ts := fixtures()["mesh"]()
	if err := w.AppendTopology(ts); err != nil {
		t.Fatal(err)
	}
	final, ops := driveJournaled(t, w, net, paths, 7, 6)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", len(segs))
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Segments != len(segs) {
		t.Fatalf("recovered %d segments, dir has %d", rec.Segments, len(segs))
	}
	if len(rec.Ops) != len(ops) {
		t.Fatalf("recovered %d ops across segments, drove %d", len(rec.Ops), len(ops))
	}
	got, _, err := rec.RecoverNetwork()
	if err != nil {
		t.Fatal(err)
	}
	requireSameNetworks(t, "rotated recovery", got, final)
}

// TestJournalSyncPolicies: every policy yields a recoverable journal after a
// clean Close (the policies differ only in crash-window guarantees).
func TestJournalSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAppend, SyncRotate, SyncNever} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(Config{Dir: dir, Sync: pol})
			if err != nil {
				t.Fatal(err)
			}
			net, paths, ts := fixtures()["line"]()
			if err := w.AppendTopology(ts); err != nil {
				t.Fatal(err)
			}
			final, _ := driveJournaled(t, w, net, paths, 3, 0)
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			rec, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := rec.RecoverNetwork()
			if err != nil {
				t.Fatal(err)
			}
			requireSameNetworks(t, pol.String(), got, final)
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"": SyncAppend, "append": SyncAppend, "rotate": SyncRotate, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestSnapshotCatchUpEquivalence is the snapshot + tail-catch-up rule at
// the journal level: recovery through the newest snapshot must land on the
// same state as a full replay of the op log from scratch.
func TestSnapshotCatchUpEquivalence(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	net, paths, ts := fixtures()["hub"]()
	if err := w.AppendTopology(ts); err != nil {
		t.Fatal(err)
	}
	driveJournaled(t, w, net, paths, 99, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot.OpIndex == 0 {
		t.Fatalf("want a mid-log snapshot, got %+v", rec.Snapshot)
	}
	viaSnap, replayed, err := rec.RecoverNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if replayed >= len(rec.Ops) {
		t.Fatalf("snapshot saved nothing: replayed %d of %d ops", replayed, len(rec.Ops))
	}
	full := netsim.NewNetwork(rec.Topo.Build())
	ops := make([]netsim.Op, len(rec.Ops))
	for i, or := range rec.Ops {
		ops[i] = or.Op
	}
	if err := netsim.Replay(full, ops); err != nil {
		t.Fatal(err)
	}
	requireSameNetworks(t, "snapshot+tail vs full replay", viaSnap, full)
}

// TestWriterResumesAcrossReopen: a reopened journal continues the op count,
// so snapshots written after a restart still index into the full log.
func TestWriterResumesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	net, paths, ts := fixtures()["line"]()
	if err := w.AppendTopology(ts); err != nil {
		t.Fatal(err)
	}
	_, ops := driveJournaled(t, w, net, paths, 5, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Ops(); got != uint64(len(ops)) {
		t.Fatalf("reopened op count %d, want %d", got, len(ops))
	}
	// Recover, continue the run on the recovered network, journaling into
	// the same log, then recover again: the log is one continuous history.
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := rec.RecoverNetwork()
	if err != nil {
		t.Fatal(err)
	}
	s := netsim.NewShared(n, netsim.SharedConfig{Journal: w2, SnapshotEvery: 3})
	d := s.Driver(9)
	h := d.StartFlow(paths[0], 25, "resumed")
	d.SetDemand(h, 50)
	d.SetWeight(h, 2)
	d.SetDemand(h, 60)
	final := s.Close()
	if err := s.JournalError(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Ops) != len(ops)+4 {
		t.Fatalf("continued log has %d ops, want %d", len(rec2.Ops), len(ops)+4)
	}
	if rec2.Snapshot == nil || rec2.Snapshot.OpIndex <= len(ops) {
		t.Fatalf("post-restart snapshot should index past the pre-restart ops: %+v", rec2.Snapshot)
	}
	got, _, err := rec2.RecoverNetwork()
	if err != nil {
		t.Fatal(err)
	}
	requireSameNetworks(t, "recover after resumed run", got, final)
}

// TestOpaqueBatchPoisonsReplay: an opaque SharedNetwork.Batch lands a
// marker, and recovery refuses to pretend replay is sound.
func TestOpaqueBatchPoisonsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	net, paths, ts := fixtures()["line"]()
	if err := w.AppendTopology(ts); err != nil {
		t.Fatal(err)
	}
	s := netsim.NewShared(net, netsim.SharedConfig{Journal: w})
	d := s.Driver(1)
	d.StartFlow(paths[0], 10, "x")
	s.Batch(func(n *netsim.Network) {
		n.SetMaxRate(77)
	})
	s.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Opaque {
		t.Fatal("opaque batch not recorded")
	}
	if _, _, err := rec.RecoverNetwork(); err == nil {
		t.Fatal("RecoverNetwork succeeded over an opaque batch")
	}
	if _, err := rec.Bisect(); err == nil {
		t.Fatal("Bisect succeeded over an opaque batch")
	}
}

// TestRecoverMissingAndEmpty: a missing directory and an empty journal both
// recover to the empty state — a first boot has no history.
func TestRecoverMissingAndEmpty(t *testing.T) {
	rec, err := Recover(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ops) != 0 || rec.Topo != nil || rec.Segments != 0 {
		t.Fatalf("missing dir recovered non-empty: %+v", rec)
	}
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err = Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ops) != 0 || rec.Segments != 1 {
		t.Fatalf("empty journal recovered: %+v", rec)
	}
}

// TestSideStreamsRoundTrip: fault events, collector ingests and poll
// results survive the journal byte for byte.
func TestSideStreamsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ev := faults.Event{At: 3 * time.Second, Changes: []faults.CapacityChange{{Link: 2, Bps: 1}, {Link: 0, Bps: 5e6}}}
	if err := w.AppendFault(ev); err != nil {
		t.Fatal(err)
	}
	inner := core.NewA2ICollector(core.CollectorConfig{AppP: "appp-x"})
	jc := WrapCollector(inner, w)
	recs := []core.QoERecord{
		{SessionID: "s1", ClientISP: "ispA", CDN: "cdn1", Cluster: "c1", Score: 4.2, BufferingRatio: 0.01},
		{SessionID: "s2", ClientISP: "ispB", CDN: "cdn2", Cluster: "c2", Score: 3.1, BufferingRatio: 0.2},
	}
	jc.Ingest(recs[0])
	jc.IngestBatch(recs[1:])
	if got := jc.Ingested(); got != 2 {
		t.Fatalf("wrapped collector ingested %d, want 2", got)
	}
	pr := PollRecord{Source: "http://peer/a2i", At: time.Unix(1754500000, 0).UTC(), Data: json.RawMessage(`{"k":1}`)}
	if err := w.AppendPoll(pr); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Faults) != 1 || !reflect.DeepEqual(rec.Faults[0], ev) {
		t.Fatalf("faults %+v", rec.Faults)
	}
	if len(rec.Ingests) != 2 || !reflect.DeepEqual(rec.Ingests, recs) {
		t.Fatalf("ingests %+v", rec.Ingests)
	}
	if len(rec.Polls) != 1 || !reflect.DeepEqual(rec.Polls[0], pr) {
		t.Fatalf("polls %+v", rec.Polls)
	}
	// Replaying the recovered ingest stream rebuilds the collector — one
	// batch in journal order, via the Recovered helper restart paths use.
	rebuilt := core.NewA2ICollector(core.CollectorConfig{AppP: "appp-x"})
	rec.ReplayIngests(rebuilt)
	if a, b := rebuilt.Summaries(), inner.Summaries(); !reflect.DeepEqual(a, b) {
		t.Fatalf("rebuilt summaries diverge:\n%+v\n%+v", a, b)
	}
}

// TestScheduleDriverToJournalsFaults: fault instants fired through
// ScheduleDriverTo land in the journal in fire order.
func TestScheduleDriverToJournalsFaults(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	net, _, ts := fixtures()["line"]()
	if err := w.AppendTopology(ts); err != nil {
		t.Fatal(err)
	}
	s := netsim.NewShared(net, netsim.SharedConfig{Journal: w})
	drv := s.Driver(1)
	plan := &faults.Plan{LinkFaults: []faults.LinkFault{
		{Link: "l0", Window: faults.Window{Start: time.Second, End: 2 * time.Second}, Factor: 0.5},
	}}
	eng := sim.NewEngine(0)
	targets := map[string]faults.Target{"l0": {ID: 0, BaseBps: 100}}
	if err := plan.ScheduleDriverTo(eng, drv, targets, w); err != nil {
		t.Fatal(err)
	}
	eng.Run(3 * time.Second)
	s.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Faults) != 2 {
		t.Fatalf("want 2 fault events (degrade + restore), got %d", len(rec.Faults))
	}
	if rec.Faults[0].At != time.Second || rec.Faults[1].At != 2*time.Second {
		t.Fatalf("fault instants %v, %v", rec.Faults[0].At, rec.Faults[1].At)
	}
	if rec.Faults[0].Changes[0].Bps != 50 || rec.Faults[1].Changes[0].Bps != 100 {
		t.Fatalf("fault capacities %+v", rec.Faults)
	}
	// The capacity edits are also in the op log, so recovery replays them.
	if len(rec.Ops) != 2 {
		t.Fatalf("want 2 ops, got %d", len(rec.Ops))
	}
	n, _, err := rec.RecoverNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Snapshot().Headroom(0); got != 100 {
		t.Fatalf("restored capacity headroom %v, want 100", got)
	}
}

// TestBisectFindsFirstDivergentOp: corrupt one op's recorded value inside
// an otherwise CRC-valid journal (payload edited, CRC recomputed — the
// tamper a checksum cannot catch) and bisect must name exactly that op.
func TestBisectFindsFirstDivergentOp(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	net, paths, ts := fixtures()["line"]()
	if err := w.AppendTopology(ts); err != nil {
		t.Fatal(err)
	}
	driveJournaled(t, w, net, paths, 12, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ops) < 6 {
		t.Fatalf("only %d ops", len(rec.Ops))
	}
	target := corruptFirstValueOp(t, dir)

	rec, err = Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rec.Bisect()
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("bisect missed the corrupted op")
	}
	if d.Index != target {
		t.Fatalf("bisect blamed op %d, corrupted op %d", d.Index, target)
	}
	if _, _, err := rec.RecoverNetwork(); err == nil {
		t.Fatal("RecoverNetwork accepted a diverging log")
	}
}

// corruptFirstValueOp rewrites the journal's first value-carrying op
// (set-demand or set-link-capacity with a finite value — ops whose Value
// actually shapes the state) with a bumped Value, recomputing the CRC so
// the frame stays valid, and returns that op's global index. The recorded
// digest is left as originally written, so the log now lies about its own
// history — exactly what bisect exists to catch.
func corruptFirstValueOp(t *testing.T, dir string) int {
	t.Helper()
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	opSeen := -1
	for _, name := range segs {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		off := len(segMagic)
		for {
			typ, payload, next, serr := scanFrame(data, off)
			if serr != nil {
				break
			}
			if typ == recOp {
				opSeen++
				op, digest, derr := decodeOpPayload(payload)
				if derr != nil {
					t.Fatal(derr)
				}
				if (op.Kind == netsim.OpSetDemand || op.Kind == netsim.OpSetLinkCapacity) && !math.IsInf(op.Value, 1) {
					op.Value += 13 // digest left as originally recorded
					frame := appendFrame(nil, recOp, appendOpPayload(nil, op, digest))
					if len(frame) != next-off {
						t.Fatalf("corrupted frame is %d bytes, original %d", len(frame), next-off)
					}
					copy(data[off:next], frame)
					if err := os.WriteFile(path, data, 0o644); err != nil {
						t.Fatal(err)
					}
					return opSeen
				}
			}
			off = next
		}
	}
	t.Fatal("no value-carrying op found in journal")
	return -1
}
