package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"eona/internal/core"
	"eona/internal/faults"
	"eona/internal/netsim"
)

// Record types. The type byte is covered by the frame CRC, so a flipped
// type is a torn frame, not a misparse.
const (
	// recTopo carries a netsim.TopoState (JSON): the graph the op log runs
	// over. Written once, first, so a journal is self-contained.
	recTopo byte = 1
	// recOp carries one netsim.Op plus the post-apply state digest
	// (binary — op demands are routinely +Inf, which JSON cannot encode).
	recOp byte = 2
	// recNetSnap carries a netsim.NetState snapshot, its digest and the
	// count of ops preceding it (binary, for the same +Inf reason).
	recNetSnap byte = 3
	// recFault carries one faults.Event (JSON).
	recFault byte = 4
	// recIngest carries one core.QoERecord (JSON).
	recIngest byte = 5
	// recPoll carries one PollRecord (JSON).
	recPoll byte = 6
	// recOpaque marks an opaque Batch mutation that could not be captured
	// op-by-op. Its presence makes op replay unsound; recovery reports it.
	recOpaque byte = 7
	// recProjCkpt carries one projection checkpoint: the folder's name, its
	// committed offset (the count of records preceding this frame in the
	// whole record stream), the state's fingerprint and the encoded state
	// itself (binary, folder-defined). State and offset travel in one
	// CRC-covered frame, so the commit is atomic: a crash mid-checkpoint
	// tears the frame and recovery falls back to the previous checkpoint.
	recProjCkpt byte = 8
)

// PollRecord is one looking-glass poll result as journaled by eona-lg: the
// raw payload fetched from a peer, so a restart can re-seed its last-known
// view without waiting out a poll interval.
type PollRecord struct {
	Source string          `json:"source"`
	At     time.Time       `json:"at"`
	Data   json.RawMessage `json:"data"`
}

// ---- binary payload codecs -------------------------------------------------
//
// Ops and snapshots are binary: demands are commonly +Inf (a greedy flow),
// which encoding/json rejects. Varints for IDs and counts, fixed 8-byte
// little-endian for float bits and digests.

// byteReader walks a payload; the first malformed field latches err and
// every later read returns zero values, so decoders check err once at the
// end.
type byteReader struct {
	b   []byte
	err error
}

func (r *byteReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("journal: truncated or malformed %s", what)
	}
}

func (r *byteReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *byteReader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *byteReader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *byteReader) str(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail(what)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// bytes reads a uvarint-length-prefixed byte field, aliasing the payload —
// callers copy if they retain it past the frame.
func (r *byteReader) bytes(what string) []byte {
	n := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.fail(what)
		return nil
	}
	b := r.b[:n]
	r.b = r.b[n:]
	return b
}

func (r *byteReader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("journal: %d trailing bytes after %s", len(r.b), what)
	}
	return nil
}

func appendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendOpPayload(buf []byte, op netsim.Op, digest uint64) []byte {
	buf = append(buf, byte(op.Kind))
	buf = binary.AppendUvarint(buf, uint64(op.Flow))
	buf = appendU64(buf, math.Float64bits(op.Value))
	buf = binary.AppendUvarint(buf, uint64(op.Link))
	buf = binary.AppendUvarint(buf, uint64(len(op.Links)))
	for _, l := range op.Links {
		buf = binary.AppendUvarint(buf, uint64(l))
	}
	buf = appendStr(buf, op.Tag)
	buf = appendU64(buf, digest)
	return buf
}

// decoder is per-recovery decode scratch. A journal replay decodes tens of
// thousands of records whose variable-width fields (op paths, tags) would
// each allocate; the decoder amortizes them — link slices are carved out of
// chunked arenas that outlive individual records, and tag strings are
// interned (the map lookup on a []byte key compiles allocation-free), so a
// log that reuses a handful of tags pays for each exactly once. The zero
// value is ready to use; a decoder serves one goroutine.
type decoder struct {
	chunk []netsim.LinkID   // current link-ID arena chunk
	tags  map[string]string // interned tag strings
}

// linkSlice carves an n-entry slice from the arena. Chunks are never
// recycled while referenced — a full chunk is simply abandoned to its
// existing slices and a fresh one started — so returned slices stay valid
// for the life of the recovery.
func (d *decoder) linkSlice(n int) []netsim.LinkID {
	if n == 0 {
		return nil
	}
	if len(d.chunk)+n > cap(d.chunk) {
		c := 1024
		if n > c {
			c = n
		}
		d.chunk = make([]netsim.LinkID, 0, c)
	}
	s := d.chunk[len(d.chunk) : len(d.chunk)+n : len(d.chunk)+n]
	d.chunk = d.chunk[:len(d.chunk)+n]
	return s
}

// intern returns b as a string, reusing a previously decoded copy when one
// exists. The m[string(b)] lookup does not allocate.
func (d *decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.tags[string(b)]; ok {
		return s
	}
	s := string(b)
	if d.tags == nil {
		d.tags = make(map[string]string)
	}
	d.tags[s] = s
	return s
}

func (d *decoder) decodeOp(p []byte) (netsim.Op, uint64, error) {
	var op netsim.Op
	if len(p) == 0 {
		return op, 0, fmt.Errorf("journal: empty op payload")
	}
	op.Kind = netsim.OpKind(p[0])
	r := &byteReader{b: p[1:]}
	op.Flow = netsim.FlowID(r.uvarint("op flow"))
	op.Value = r.f64("op value")
	op.Link = netsim.LinkID(r.uvarint("op link"))
	n := r.uvarint("op path length")
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail("op path")
	}
	if r.err == nil && n > 0 {
		op.Links = d.linkSlice(int(n))
		for i := range op.Links {
			op.Links[i] = netsim.LinkID(r.uvarint("op path link"))
		}
	}
	op.Tag = d.intern(r.bytes("op tag"))
	digest := r.u64("op digest")
	return op, digest, r.done("op record")
}

// decodeOpPayload is the scratch-free form, kept for one-shot callers
// (fuzzers, tools) that decode a single payload.
func decodeOpPayload(p []byte) (netsim.Op, uint64, error) {
	var d decoder
	return d.decodeOp(p)
}

func appendSnapPayload(buf []byte, opIndex uint64, st netsim.NetState, digest uint64) []byte {
	buf = binary.AppendUvarint(buf, opIndex)
	buf = appendU64(buf, digest)
	buf = binary.AppendUvarint(buf, uint64(st.NextID))
	buf = appendU64(buf, math.Float64bits(st.MaxRate))
	buf = binary.AppendUvarint(buf, uint64(len(st.Flows)))
	for _, f := range st.Flows {
		buf = binary.AppendUvarint(buf, uint64(f.ID))
		buf = appendU64(buf, math.Float64bits(f.Demand))
		buf = appendU64(buf, math.Float64bits(f.Weight))
		buf = appendStr(buf, f.Tag)
		buf = binary.AppendUvarint(buf, uint64(len(f.Links)))
		for _, l := range f.Links {
			buf = binary.AppendUvarint(buf, uint64(l))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.Capacities)))
	for _, c := range st.Capacities {
		buf = appendU64(buf, math.Float64bits(c))
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.LinkRates)))
	for _, v := range st.LinkRates {
		buf = appendU64(buf, math.Float64bits(v))
	}
	return buf
}

func (d *decoder) decodeSnap(p []byte) (opIndex uint64, st netsim.NetState, digest uint64, err error) {
	r := &byteReader{b: p}
	opIndex = r.uvarint("snapshot op index")
	digest = r.u64("snapshot digest")
	st.NextID = netsim.FlowID(r.uvarint("snapshot next id"))
	st.MaxRate = r.f64("snapshot max rate")
	nf := r.uvarint("snapshot flow count")
	if r.err == nil && nf > uint64(len(r.b)) {
		r.fail("snapshot flows")
	}
	for i := uint64(0); r.err == nil && i < nf; i++ {
		var f netsim.FlowState
		f.ID = netsim.FlowID(r.uvarint("flow id"))
		f.Demand = r.f64("flow demand")
		f.Weight = r.f64("flow weight")
		f.Tag = d.intern(r.bytes("flow tag"))
		nl := r.uvarint("flow path length")
		if r.err == nil && nl > uint64(len(r.b)) {
			r.fail("flow path")
		}
		if r.err == nil && nl > 0 {
			f.Links = d.linkSlice(int(nl))
			for j := range f.Links {
				f.Links[j] = netsim.LinkID(r.uvarint("flow path link"))
			}
		}
		st.Flows = append(st.Flows, f)
	}
	nc := r.uvarint("capacity count")
	if r.err == nil && nc > uint64(len(r.b))/8+1 {
		r.fail("capacities")
	}
	for i := uint64(0); r.err == nil && i < nc; i++ {
		st.Capacities = append(st.Capacities, r.f64("capacity"))
	}
	nr := r.uvarint("link-rate count")
	if r.err == nil && nr > uint64(len(r.b))/8+1 {
		r.fail("link rates")
	}
	for i := uint64(0); r.err == nil && i < nr; i++ {
		st.LinkRates = append(st.LinkRates, r.f64("link rate"))
	}
	return opIndex, st, digest, r.done("snapshot record")
}

// decodeSnapPayload is the scratch-free form, kept for one-shot callers.
func decodeSnapPayload(p []byte) (opIndex uint64, st netsim.NetState, digest uint64, err error) {
	var d decoder
	return d.decodeSnap(p)
}

// appendCkptPayload frames one projection checkpoint: name, offset, state
// fingerprint, then the raw state bytes to the end of the payload.
func appendCkptPayload(buf []byte, name string, offset, digest uint64, state []byte) []byte {
	buf = appendStr(buf, name)
	buf = binary.AppendUvarint(buf, offset)
	buf = appendU64(buf, digest)
	return append(buf, state...)
}

func decodeCkptPayload(p []byte) (name string, offset, digest uint64, state []byte, err error) {
	r := &byteReader{b: p}
	name = r.str("checkpoint name")
	offset = r.uvarint("checkpoint offset")
	digest = r.u64("checkpoint digest")
	if r.err != nil {
		return "", 0, 0, nil, r.err
	}
	// The remainder is the folder-encoded state, aliasing p.
	return name, offset, digest, r.b, nil
}

// Fingerprint hashes a byte slice with FNV-1a 64 — the digest stamped into
// checkpoint frames and used by projections to compare encoded states. Same
// construction as netsim.StateDigest's hasher, exported so folders outside
// this package agree on the function.
func Fingerprint(p []byte) uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// ---- JSON payload codecs ---------------------------------------------------
//
// Topology, fault, ingest and poll records carry no infinities, so they use
// JSON: self-describing, greppable with standard tools, and schema drift
// degrades to a decode error rather than silent misparse.

func marshalJSONPayload(kind string, v any) ([]byte, error) {
	p, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("journal: encode %s: %w", kind, err)
	}
	return p, nil
}

func decodeTopoPayload(p []byte) (netsim.TopoState, error) {
	var ts netsim.TopoState
	if err := json.Unmarshal(p, &ts); err != nil {
		return ts, fmt.Errorf("journal: decode topology: %w", err)
	}
	return ts, nil
}

func decodeFaultPayload(p []byte) (faults.Event, error) {
	var ev faults.Event
	if err := json.Unmarshal(p, &ev); err != nil {
		return ev, fmt.Errorf("journal: decode fault event: %w", err)
	}
	return ev, nil
}

func decodeIngestPayload(p []byte) (core.QoERecord, error) {
	var rec core.QoERecord
	if err := json.Unmarshal(p, &rec); err != nil {
		return rec, fmt.Errorf("journal: decode ingest: %w", err)
	}
	return rec, nil
}

func decodePollPayload(p []byte) (PollRecord, error) {
	var pr PollRecord
	if err := json.Unmarshal(p, &pr); err != nil {
		return pr, fmt.Errorf("journal: decode poll: %w", err)
	}
	return pr, nil
}
