package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"eona/internal/core"
	"eona/internal/faults"
	"eona/internal/netsim"
)

// Record types. The type byte is covered by the frame CRC, so a flipped
// type is a torn frame, not a misparse.
const (
	// recTopo carries a netsim.TopoState (JSON): the graph the op log runs
	// over. Written once, first, so a journal is self-contained.
	recTopo byte = 1
	// recOp carries one netsim.Op plus the post-apply state digest
	// (binary — op demands are routinely +Inf, which JSON cannot encode).
	recOp byte = 2
	// recNetSnap carries a netsim.NetState snapshot, its digest and the
	// count of ops preceding it (binary, for the same +Inf reason).
	recNetSnap byte = 3
	// recFault carries one faults.Event (JSON).
	recFault byte = 4
	// recIngest carries one core.QoERecord (JSON).
	recIngest byte = 5
	// recPoll carries one PollRecord (JSON).
	recPoll byte = 6
	// recOpaque marks an opaque Batch mutation that could not be captured
	// op-by-op. Its presence makes op replay unsound; recovery reports it.
	recOpaque byte = 7
)

// PollRecord is one looking-glass poll result as journaled by eona-lg: the
// raw payload fetched from a peer, so a restart can re-seed its last-known
// view without waiting out a poll interval.
type PollRecord struct {
	Source string          `json:"source"`
	At     time.Time       `json:"at"`
	Data   json.RawMessage `json:"data"`
}

// ---- binary payload codecs -------------------------------------------------
//
// Ops and snapshots are binary: demands are commonly +Inf (a greedy flow),
// which encoding/json rejects. Varints for IDs and counts, fixed 8-byte
// little-endian for float bits and digests.

// byteReader walks a payload; the first malformed field latches err and
// every later read returns zero values, so decoders check err once at the
// end.
type byteReader struct {
	b   []byte
	err error
}

func (r *byteReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("journal: truncated or malformed %s", what)
	}
}

func (r *byteReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *byteReader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *byteReader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *byteReader) str(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail(what)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *byteReader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("journal: %d trailing bytes after %s", len(r.b), what)
	}
	return nil
}

func appendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendOpPayload(buf []byte, op netsim.Op, digest uint64) []byte {
	buf = append(buf, byte(op.Kind))
	buf = binary.AppendUvarint(buf, uint64(op.Flow))
	buf = appendU64(buf, math.Float64bits(op.Value))
	buf = binary.AppendUvarint(buf, uint64(op.Link))
	buf = binary.AppendUvarint(buf, uint64(len(op.Links)))
	for _, l := range op.Links {
		buf = binary.AppendUvarint(buf, uint64(l))
	}
	buf = appendStr(buf, op.Tag)
	buf = appendU64(buf, digest)
	return buf
}

func decodeOpPayload(p []byte) (netsim.Op, uint64, error) {
	var op netsim.Op
	if len(p) == 0 {
		return op, 0, fmt.Errorf("journal: empty op payload")
	}
	op.Kind = netsim.OpKind(p[0])
	r := &byteReader{b: p[1:]}
	op.Flow = netsim.FlowID(r.uvarint("op flow"))
	op.Value = r.f64("op value")
	op.Link = netsim.LinkID(r.uvarint("op link"))
	n := r.uvarint("op path length")
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail("op path")
	}
	if r.err == nil && n > 0 {
		op.Links = make([]netsim.LinkID, n)
		for i := range op.Links {
			op.Links[i] = netsim.LinkID(r.uvarint("op path link"))
		}
	}
	op.Tag = r.str("op tag")
	digest := r.u64("op digest")
	return op, digest, r.done("op record")
}

func appendSnapPayload(buf []byte, opIndex uint64, st netsim.NetState, digest uint64) []byte {
	buf = binary.AppendUvarint(buf, opIndex)
	buf = appendU64(buf, digest)
	buf = binary.AppendUvarint(buf, uint64(st.NextID))
	buf = appendU64(buf, math.Float64bits(st.MaxRate))
	buf = binary.AppendUvarint(buf, uint64(len(st.Flows)))
	for _, f := range st.Flows {
		buf = binary.AppendUvarint(buf, uint64(f.ID))
		buf = appendU64(buf, math.Float64bits(f.Demand))
		buf = appendU64(buf, math.Float64bits(f.Weight))
		buf = appendStr(buf, f.Tag)
		buf = binary.AppendUvarint(buf, uint64(len(f.Links)))
		for _, l := range f.Links {
			buf = binary.AppendUvarint(buf, uint64(l))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.Capacities)))
	for _, c := range st.Capacities {
		buf = appendU64(buf, math.Float64bits(c))
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.LinkRates)))
	for _, v := range st.LinkRates {
		buf = appendU64(buf, math.Float64bits(v))
	}
	return buf
}

func decodeSnapPayload(p []byte) (opIndex uint64, st netsim.NetState, digest uint64, err error) {
	r := &byteReader{b: p}
	opIndex = r.uvarint("snapshot op index")
	digest = r.u64("snapshot digest")
	st.NextID = netsim.FlowID(r.uvarint("snapshot next id"))
	st.MaxRate = r.f64("snapshot max rate")
	nf := r.uvarint("snapshot flow count")
	if r.err == nil && nf > uint64(len(r.b)) {
		r.fail("snapshot flows")
	}
	for i := uint64(0); r.err == nil && i < nf; i++ {
		var f netsim.FlowState
		f.ID = netsim.FlowID(r.uvarint("flow id"))
		f.Demand = r.f64("flow demand")
		f.Weight = r.f64("flow weight")
		f.Tag = r.str("flow tag")
		nl := r.uvarint("flow path length")
		if r.err == nil && nl > uint64(len(r.b)) {
			r.fail("flow path")
		}
		for j := uint64(0); r.err == nil && j < nl; j++ {
			f.Links = append(f.Links, netsim.LinkID(r.uvarint("flow path link")))
		}
		st.Flows = append(st.Flows, f)
	}
	nc := r.uvarint("capacity count")
	if r.err == nil && nc > uint64(len(r.b))/8+1 {
		r.fail("capacities")
	}
	for i := uint64(0); r.err == nil && i < nc; i++ {
		st.Capacities = append(st.Capacities, r.f64("capacity"))
	}
	nr := r.uvarint("link-rate count")
	if r.err == nil && nr > uint64(len(r.b))/8+1 {
		r.fail("link rates")
	}
	for i := uint64(0); r.err == nil && i < nr; i++ {
		st.LinkRates = append(st.LinkRates, r.f64("link rate"))
	}
	return opIndex, st, digest, r.done("snapshot record")
}

// ---- JSON payload codecs ---------------------------------------------------
//
// Topology, fault, ingest and poll records carry no infinities, so they use
// JSON: self-describing, greppable with standard tools, and schema drift
// degrades to a decode error rather than silent misparse.

func marshalJSONPayload(kind string, v any) ([]byte, error) {
	p, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("journal: encode %s: %w", kind, err)
	}
	return p, nil
}

func decodeTopoPayload(p []byte) (netsim.TopoState, error) {
	var ts netsim.TopoState
	if err := json.Unmarshal(p, &ts); err != nil {
		return ts, fmt.Errorf("journal: decode topology: %w", err)
	}
	return ts, nil
}

func decodeFaultPayload(p []byte) (faults.Event, error) {
	var ev faults.Event
	if err := json.Unmarshal(p, &ev); err != nil {
		return ev, fmt.Errorf("journal: decode fault event: %w", err)
	}
	return ev, nil
}

func decodeIngestPayload(p []byte) (core.QoERecord, error) {
	var rec core.QoERecord
	if err := json.Unmarshal(p, &rec); err != nil {
		return rec, fmt.Errorf("journal: decode ingest: %w", err)
	}
	return rec, nil
}

func decodePollPayload(p []byte) (PollRecord, error) {
	var pr PollRecord
	if err := json.Unmarshal(p, &pr); err != nil {
		return pr, fmt.Errorf("journal: decode poll: %w", err)
	}
	return pr, nil
}
