package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"eona/internal/core"
	"eona/internal/faults"
	"eona/internal/netsim"
)

// SyncPolicy selects when the writer fsyncs the active segment.
type SyncPolicy int

const (
	// SyncAppend fsyncs after every appended record: a record that was
	// acknowledged is on disk. The default, and the policy the durability
	// contract is stated against.
	SyncAppend SyncPolicy = iota
	// SyncRotate fsyncs only at segment rotation and Close. A crash can
	// lose the unsynced suffix of the active segment, but recovery still
	// truncates cleanly at the last valid frame.
	SyncRotate
	// SyncNever leaves all syncing to the OS. Fastest; weakest.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAppend:
		return "append"
	case SyncRotate:
		return "rotate"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the flag spellings ("append", "rotate", "never") to
// a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "append", "":
		return SyncAppend, nil
	case "rotate":
		return SyncRotate, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown sync policy %q (want append, rotate or never)", s)
}

// DefaultSegmentBytes is the rotation threshold when Config.SegmentBytes is
// zero.
const DefaultSegmentBytes = 8 << 20

// Config parameterizes Open.
type Config struct {
	// Dir is the journal directory (created if absent). One journal per
	// directory.
	Dir string
	// SegmentBytes rotates the active segment once it grows past this many
	// bytes (default DefaultSegmentBytes). Rotation happens between
	// records; frames never straddle segments.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncAppend).
	Sync SyncPolicy
}

// segName formats the i'th segment's file name. Fixed-width indices make
// lexical order equal numeric order.
func segName(i int) string { return fmt.Sprintf("journal-%06d.eoj", i) }

// segmentFiles lists dir's segment files sorted by index.
func segmentFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		var i int
		if !e.IsDir() && len(e.Name()) == len(segName(0)) {
			if _, err := fmt.Sscanf(e.Name(), "journal-%06d.eoj", &i); err == nil {
				segs = append(segs, e.Name())
			}
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// Writer is the append side of a journal. Safe for concurrent use: the
// SharedNetwork owner goroutine, the fault scheduler and a collector wrapper
// may all append. The first write error latches (Err); later appends return
// it without touching the file, so a full disk cannot interleave torn
// frames.
type Writer struct {
	mu      sync.Mutex
	cfg     Config
	f       *os.File
	size    int64 // bytes written to the active segment
	seg     int   // active segment index
	opCount uint64
	// recCount counts every valid record in the journal (recovered +
	// appended this process), of all types including checkpoints. It is the
	// offset a checkpoint frame commits: the count of records that precede
	// it in the stream.
	recCount uint64
	buf      []byte // frame-encode scratch, reused per record
	payload  []byte // payload-encode scratch, reused per record
	err      error
}

// Open opens (or creates) the journal in cfg.Dir for appending. An existing
// journal is first repaired: the last segment's torn tail — the residue of a
// crash mid-write — is truncated at the last valid frame boundary, and any
// segments after a torn one (residue of a crash mid-rotation) are deleted.
// Appends then continue the surviving log; the op count resumes so snapshot
// offsets stay consistent across restarts.
func Open(cfg Config) (*Writer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("journal: Config.Dir is required")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	segs, err := segmentFiles(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{cfg: cfg}
	if len(segs) == 0 {
		if err := w.openSegment(0); err != nil {
			return nil, err
		}
		return w, nil
	}
	// Walk existing segments counting ops and locating the first tear.
	last := len(segs) - 1
	for i, name := range segs {
		path := filepath.Join(cfg.Dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		valid, serr := scanSegment(data, func(typ byte, _ []byte) error {
			if typ == recOp {
				w.opCount++
			}
			w.recCount++
			return nil
		})
		if serr != nil {
			// Torn segment: truncate it and drop everything after it.
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, fmt.Errorf("journal: truncate torn tail: %w", err)
			}
			for _, later := range segs[i+1:] {
				if err := os.Remove(filepath.Join(cfg.Dir, later)); err != nil {
					return nil, fmt.Errorf("journal: drop post-tear segment: %w", err)
				}
			}
			last = i
			break
		}
	}
	var idx int
	fmt.Sscanf(segs[last], "journal-%06d.eoj", &idx)
	path := filepath.Join(cfg.Dir, segs[last])
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	w.f, w.seg, w.size = f, idx, st.Size()
	if w.size < int64(len(segMagic)) {
		// A zero-length or sub-magic segment (crash between create and
		// magic write) is rewritten from scratch.
		f.Close()
		if err := w.openSegment(idx); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// openSegment creates segment i, writes its magic and makes it active.
func (w *Writer) openSegment(i int) error {
	path := filepath.Join(w.cfg.Dir, segName(i))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if w.cfg.Sync != SyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("journal: %w", err)
		}
		syncDir(w.cfg.Dir)
	}
	w.f, w.seg, w.size = f, i, int64(len(segMagic))
	return nil
}

// syncDir fsyncs a directory so a freshly created segment's entry is
// durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// append frames and writes one record under the lock, honoring the sync
// policy and rotating afterwards when the active segment is past its bound.
func (w *Writer) append(typ byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(typ, payload)
}

func (w *Writer) appendLocked(typ byte, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	w.buf = appendFrame(w.buf[:0], typ, payload)
	n, err := w.f.Write(w.buf)
	if err != nil {
		// A partial write leaves a torn frame; recovery truncates it.
		w.err = fmt.Errorf("journal: append: %w", err)
		return w.err
	}
	w.size += int64(n)
	w.recCount++
	if w.cfg.Sync == SyncAppend {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("journal: sync: %w", err)
			return w.err
		}
	}
	if w.size >= w.cfg.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) rotateLocked() error {
	if w.cfg.Sync != SyncNever {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("journal: sync at rotate: %w", err)
			return w.err
		}
	}
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("journal: close segment: %w", err)
		return w.err
	}
	if err := w.openSegment(w.seg + 1); err != nil {
		w.err = err
		return err
	}
	return nil
}

// AppendTopology records the topology the op log runs over. Write it once,
// right after Open on a fresh journal, so recovery can rebuild the graph
// without the scenario code.
func (w *Writer) AppendTopology(ts netsim.TopoState) error {
	p, err := marshalJSONPayload("topology", ts)
	if err != nil {
		return err
	}
	return w.append(recTopo, p)
}

// AppendOp implements netsim.OpSink: one committed mutation plus the state
// digest after applying it.
func (w *Writer) AppendOp(op netsim.Op, digest uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.payload = appendOpPayload(w.payload[:0], op, digest)
	if err := w.appendLocked(recOp, w.payload); err != nil {
		return err
	}
	w.opCount++
	return nil
}

// AppendSnapshot implements netsim.OpSink: a full NetState checkpoint.
// Recovery imports the newest snapshot and replays only the ops behind it.
func (w *Writer) AppendSnapshot(st netsim.NetState, digest uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.payload = appendSnapPayload(w.payload[:0], w.opCount, st, digest)
	return w.appendLocked(recNetSnap, w.payload)
}

// AppendCheckpoint commits one projection checkpoint: the folder's encoded
// state plus the offset it is durable through — the count of records that
// precede the checkpoint frame in the record stream. Offset, fingerprint
// and state travel in a single CRC-covered frame, so the commit is atomic
// under the journal's torn-tail contract: either the whole checkpoint
// survives a crash or recovery falls back to the previous one. Because the
// offset is assigned under the writer lock, data records a folder already
// folded are always at stream positions below it — the fold-then-checkpoint
// ordering callers follow makes the offset a true low-water mark.
func (w *Writer) AppendCheckpoint(name string, state []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.payload = appendCkptPayload(w.payload[:0], name, w.recCount, Fingerprint(state), state)
	return w.appendLocked(recProjCkpt, w.payload)
}

// AppendOpaque implements netsim.OpSink: marks an opaque Batch mutation the
// journal could not capture op-by-op. Replay past this marker is unsound and
// recovery says so.
func (w *Writer) AppendOpaque() error { return w.append(recOpaque, nil) }

// AppendFault implements faults.Sink.
func (w *Writer) AppendFault(ev faults.Event) error {
	p, err := marshalJSONPayload("fault event", ev)
	if err != nil {
		return err
	}
	return w.append(recFault, p)
}

// AppendIngest records one collector ingest.
func (w *Writer) AppendIngest(rec core.QoERecord) error {
	p, err := marshalJSONPayload("ingest", rec)
	if err != nil {
		return err
	}
	return w.append(recIngest, p)
}

// AppendPoll records one looking-glass poll result.
func (w *Writer) AppendPoll(pr PollRecord) error {
	p, err := marshalJSONPayload("poll", pr)
	if err != nil {
		return err
	}
	return w.append(recPoll, p)
}

// Sync forces the active segment to disk regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: sync: %w", err)
	}
	return w.err
}

// Err returns the writer's latched first error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Ops returns the number of op records in the journal (recovered + appended
// this process).
func (w *Writer) Ops() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.opCount
}

// Records returns the number of records of all types in the journal
// (recovered + appended this process) — the offset the next AppendCheckpoint
// would commit.
func (w *Writer) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recCount
}

// Close syncs (per policy) and closes the active segment. The writer is
// unusable afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	if w.cfg.Sync != SyncNever && w.err == nil {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("journal: sync at close: %w", err)
		}
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = fmt.Errorf("journal: close: %w", err)
	}
	w.f = nil
	return w.err
}

var _ netsim.OpSink = (*Writer)(nil)
var _ faults.Sink = (*Writer)(nil)
