package journal

import (
	"testing"

	"eona/internal/netsim"
)

// benchOps builds a representative op stream: 32 long-lived flows on a
// two-link line, then demand and capacity edits cycling over them.
func benchOps(n int) (netsim.TopoState, []netsim.Op) {
	topo := netsim.NewTopology()
	a := topo.AddLink("a", "b", 100, 0, "")
	b := topo.AddLink("b", "c", 80, 0, "")
	links := []netsim.LinkID{a.ID, b.ID}
	const flows = 32
	ops := make([]netsim.Op, 0, n)
	for i := 0; i < flows && i < n; i++ {
		ops = append(ops, netsim.Op{Kind: netsim.OpStart, Flow: netsim.FlowID(i), Links: links, Value: 10, Tag: "bench"})
	}
	for i := flows; i < n; i++ {
		if i%5 == 0 {
			ops = append(ops, netsim.Op{Kind: netsim.OpSetLinkCapacity, Link: a.ID, Value: float64(60 + i%50)})
		} else {
			ops = append(ops, netsim.Op{Kind: netsim.OpSetDemand, Flow: netsim.FlowID(i % flows), Value: float64(1 + i%40)})
		}
	}
	return netsim.ExportTopology(topo), ops
}

// BenchmarkJournalAppend measures the framing + write path per op record
// with fsync off, so it benchmarks the journal, not the disk.
func BenchmarkJournalAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := Open(Config{Dir: dir, SegmentBytes: 1 << 30, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	op := netsim.Op{Kind: netsim.OpSetDemand, Flow: 7, Value: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.AppendOp(op, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalAppendSynced is the durable path: one fsync per record.
func BenchmarkJournalAppendSynced(b *testing.B) {
	dir := b.TempDir()
	w, err := Open(Config{Dir: dir, SegmentBytes: 1 << 30, Sync: SyncAppend})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	op := netsim.Op{Kind: netsim.OpSetDemand, Flow: 7, Value: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.AppendOp(op, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalReplay measures full recovery (scan + decode + replay)
// of a 3k-op journal.
func BenchmarkJournalReplay(b *testing.B) {
	dir := b.TempDir()
	w, err := Open(Config{Dir: dir, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	ts, ops := benchOps(3000)
	if err := w.AppendTopology(ts); err != nil {
		b.Fatal(err)
	}
	n := netsim.NewNetwork(ts.Build())
	rp := netsim.NewReplayer(n)
	for _, op := range ops {
		if err := rp.Apply(op); err != nil {
			b.Fatal(err)
		}
		if err := w.AppendOp(op, n.StateDigest()); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := Recover(dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := rec.RecoverNetwork(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAppendOpAllocFree pins the SyncNever append path at zero allocations:
// frame and payload encoding reuse the writer's scratch buffers, so journal
// capture adds no GC pressure to the owner goroutine's commit loop.
func TestAppendOpAllocFree(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir, SegmentBytes: 1 << 30, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	op := netsim.Op{Kind: netsim.OpSetDemand, Flow: 7, Value: 42}
	i := uint64(0)
	append1 := func() {
		if err := w.AppendOp(op, i); err != nil {
			t.Fatal(err)
		}
		i++
	}
	append1() // warm the scratch buffers
	if a := testing.AllocsPerRun(500, append1); a != 0 {
		t.Errorf("AppendOp (SyncNever) allocates %v allocs/op, want 0", a)
	}
}
