package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"eona/internal/core"
	"eona/internal/faults"
	"eona/internal/netsim"
)

// OpRecord is one journaled netsim op with the state digest the writer
// recorded after applying it.
type OpRecord struct {
	Op     netsim.Op
	Digest uint64
}

// SnapRecord is one journaled NetState checkpoint.
type SnapRecord struct {
	// OpIndex counts the op records that precede this snapshot; tail
	// catch-up replays Ops[OpIndex:].
	OpIndex int
	State   netsim.NetState
	Digest  uint64
}

// RecordKind names a record's type in Recovered.Stream. The values are the
// journal's on-disk record-type bytes.
type RecordKind byte

const (
	KindTopo       = RecordKind(recTopo)
	KindOp         = RecordKind(recOp)
	KindNetSnap    = RecordKind(recNetSnap)
	KindFault      = RecordKind(recFault)
	KindIngest     = RecordKind(recIngest)
	KindPoll       = RecordKind(recPoll)
	KindOpaque     = RecordKind(recOpaque)
	KindCheckpoint = RecordKind(recProjCkpt)
)

func (k RecordKind) String() string {
	switch k {
	case KindTopo:
		return "topo"
	case KindOp:
		return "op"
	case KindNetSnap:
		return "netsnap"
	case KindFault:
		return "fault"
	case KindIngest:
		return "ingest"
	case KindPoll:
		return "poll"
	case KindOpaque:
		return "opaque"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecordKind(%d)", byte(k))
	}
}

// StreamEntry locates one record in the journal's total order: its kind and
// its index into the corresponding per-kind slice (Ops, Ingests, Faults,
// Polls, Snapshots; zero for topo/opaque/checkpoint markers). A projection
// resuming from committed offset N folds Stream[N:] — the exact surviving
// suffix, interleaved across kinds in append order.
type StreamEntry struct {
	Kind  RecordKind
	Index int32
}

// Checkpoint is one recovered projection checkpoint frame.
type Checkpoint struct {
	// Offset is the count of records preceding this checkpoint in the
	// stream: the folder's state covers exactly Stream[:Offset]. Resume
	// folds Stream[Offset:] on top.
	Offset uint64
	// Digest is Fingerprint(State), verified against the re-encoded state
	// after decode so a folder schema drift is caught loudly.
	Digest uint64
	// State is the folder-encoded state (copied out of the frame).
	State []byte
}

// Recovered is everything a journal holds after tear repair: the decoded
// record streams plus what was discarded to get there. It is read-only —
// Recover never modifies the files (Open does the truncation).
type Recovered struct {
	// Topo is the journaled topology, nil if the journal has none (e.g. an
	// eona-lg journal, which carries only ingests and polls).
	Topo *netsim.TopoState
	// Snapshot is the newest intact snapshot, nil if none.
	Snapshot *SnapRecord
	// Snapshots holds every intact snapshot in append order; MaterializeAt
	// picks the newest one at or before its target op index.
	Snapshots []SnapRecord
	// Ops holds every op record in append order, from the beginning of the
	// log — not just the tail, so Bisect can replay the whole history.
	Ops []OpRecord
	// Ingests, Faults and Polls are the non-netsim streams in append order.
	Ingests []core.QoERecord
	Faults  []faults.Event
	Polls   []PollRecord
	// Stream is the journal's total record order: one entry per surviving
	// record, across all kinds. Projections fold it; checkpoint offsets
	// index into it.
	Stream []StreamEntry
	// Checkpoints holds each projection folder's recovered checkpoints in
	// append order (oldest first), keyed by folder name.
	Checkpoints map[string][]Checkpoint
	// Opaque reports that an opaque-batch marker was seen: some mutation
	// was not captured op-by-op, so replaying Ops does NOT reproduce the
	// writer's network. RecoverNetwork refuses in that case.
	Opaque bool
	// opaqueAtOp is len(Ops) when the first opaque marker was seen:
	// materialization at or below that op index is still sound.
	opaqueAtOp int
	// TruncatedBytes counts torn-tail bytes that were ignored, and
	// DroppedSegments counts segments discarded after a mid-log tear.
	TruncatedBytes  int64
	DroppedSegments int
	// Segments counts the segment files that contributed records.
	Segments int
	// dec amortizes payload decode allocations across the whole recovery.
	dec decoder
}

// Recover reads the journal in dir, tolerating (and measuring) a torn tail:
// everything before the first tear is decoded, everything after it is
// counted into TruncatedBytes/DroppedSegments. A missing directory or one
// with no segments yields an empty Recovered, not an error — a first boot
// has no journal yet.
func Recover(dir string) (*Recovered, error) {
	rec := &Recovered{}
	segs, err := segmentFiles(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return rec, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	torn := false
	for i, name := range segs {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		if torn {
			rec.DroppedSegments++
			rec.TruncatedBytes += int64(len(data))
			continue
		}
		valid, serr := scanSegment(data, rec.apply)
		if serr != nil && !errors.Is(serr, ErrTorn) {
			return nil, fmt.Errorf("journal: segment %s: %w", name, serr)
		}
		rec.Segments = i + 1
		if serr != nil {
			torn = true
			rec.TruncatedBytes += int64(len(data) - valid)
		}
	}
	if n := len(rec.Snapshots); n > 0 {
		rec.Snapshot = &rec.Snapshots[n-1]
	}
	return rec, nil
}

// apply decodes one record into the Recovered streams. A record that frames
// correctly but fails its payload decode is corruption past the CRC —
// surfaced as an error, not silently skipped.
func (r *Recovered) apply(typ byte, payload []byte) error {
	entry := StreamEntry{Kind: RecordKind(typ)}
	switch typ {
	case recTopo:
		ts, err := decodeTopoPayload(payload)
		if err != nil {
			return err
		}
		r.Topo = &ts
	case recOp:
		op, digest, err := r.dec.decodeOp(payload)
		if err != nil {
			return err
		}
		entry.Index = int32(len(r.Ops))
		r.Ops = append(r.Ops, OpRecord{Op: op, Digest: digest})
	case recNetSnap:
		opIndex, st, digest, err := r.dec.decodeSnap(payload)
		if err != nil {
			return err
		}
		if opIndex > uint64(len(r.Ops)) {
			return fmt.Errorf("journal: snapshot claims %d preceding ops, log has %d", opIndex, len(r.Ops))
		}
		entry.Index = int32(len(r.Snapshots))
		r.Snapshots = append(r.Snapshots, SnapRecord{OpIndex: int(opIndex), State: st, Digest: digest})
	case recFault:
		ev, err := decodeFaultPayload(payload)
		if err != nil {
			return err
		}
		entry.Index = int32(len(r.Faults))
		r.Faults = append(r.Faults, ev)
	case recIngest:
		qr, err := decodeIngestPayload(payload)
		if err != nil {
			return err
		}
		entry.Index = int32(len(r.Ingests))
		r.Ingests = append(r.Ingests, qr)
	case recPoll:
		pr, err := decodePollPayload(payload)
		if err != nil {
			return err
		}
		entry.Index = int32(len(r.Polls))
		r.Polls = append(r.Polls, pr)
	case recOpaque:
		if !r.Opaque {
			r.Opaque = true
			r.opaqueAtOp = len(r.Ops)
		}
	case recProjCkpt:
		name, offset, digest, state, err := decodeCkptPayload(payload)
		if err != nil {
			return err
		}
		if offset > uint64(len(r.Stream)) {
			return fmt.Errorf("journal: checkpoint %q claims offset %d, stream has %d records", name, offset, len(r.Stream))
		}
		if got := Fingerprint(state); got != digest {
			return fmt.Errorf("journal: checkpoint %q state fingerprint %016x != recorded %016x", name, got, digest)
		}
		if r.Checkpoints == nil {
			r.Checkpoints = make(map[string][]Checkpoint)
		}
		cp := Checkpoint{Offset: offset, Digest: digest, State: append([]byte(nil), state...)}
		r.Checkpoints[name] = append(r.Checkpoints[name], cp)
	default:
		return fmt.Errorf("journal: unknown record type %d", typ)
	}
	r.Stream = append(r.Stream, entry)
	return nil
}

// LatestCheckpoint returns a folder's newest recovered checkpoint, or false
// when the journal holds none for that name.
func (r *Recovered) LatestCheckpoint(name string) (Checkpoint, bool) {
	cps := r.Checkpoints[name]
	if len(cps) == 0 {
		return Checkpoint{}, false
	}
	return cps[len(cps)-1], true
}

// RecoverNetwork rebuilds the journaled network at the head of the log:
// latest snapshot imported onto a fresh network over the journaled
// topology, then the op tail behind the snapshot replayed — or a full
// replay when no snapshot exists. Every step is verified against the
// journal's recorded digests; a mismatch means the log does not reproduce
// the writer's run (use Bisect to find where). Returns the network and the
// number of tail ops replayed.
func (r *Recovered) RecoverNetwork() (*netsim.Network, int, error) {
	if r.Opaque {
		return nil, 0, fmt.Errorf("journal: log contains opaque batch mutations; op replay is unsound")
	}
	return r.MaterializeAt(len(r.Ops))
}

// MaterializeAt rebuilds the journaled network as it stood after the first
// opIndex ops — time travel to any journaled point. Cost is O(distance to
// the nearest preceding snapshot), not O(opIndex): the newest snapshot at
// or before opIndex is imported and only the gap is replayed, the whole
// tail inside one Batch so the allocator re-solves once at commit instead
// of per op. Verification is not weakened by batching: StateDigest hashes
// allocator *inputs*, which update eagerly inside an open batch, so each
// replayed op is still checked against the digest the writer recorded.
// Returns the network and the number of tail ops replayed.
func (r *Recovered) MaterializeAt(opIndex int) (*netsim.Network, int, error) {
	if r.Topo == nil {
		return nil, 0, fmt.Errorf("journal: no topology record; journal does not carry a network")
	}
	if opIndex < 0 || opIndex > len(r.Ops) {
		return nil, 0, fmt.Errorf("journal: op index %d out of range [0, %d]", opIndex, len(r.Ops))
	}
	if r.Opaque && opIndex > r.opaqueAtOp {
		return nil, 0, fmt.Errorf("journal: opaque batch mutation after op %d poisons replay past it; cannot materialize at %d", r.opaqueAtOp, opIndex)
	}
	n := netsim.NewNetwork(r.Topo.Build())
	start := 0
	// Snapshots are appended in op order, so the newest usable one is the
	// last with OpIndex <= opIndex.
	for i := len(r.Snapshots) - 1; i >= 0; i-- {
		if r.Snapshots[i].OpIndex <= opIndex {
			snap := &r.Snapshots[i]
			if err := n.ImportState(snap.State); err != nil {
				return nil, 0, fmt.Errorf("journal: import snapshot: %w", err)
			}
			if got := n.StateDigest(); got != snap.Digest {
				return nil, 0, fmt.Errorf("journal: imported snapshot digest %016x != recorded %016x", got, snap.Digest)
			}
			start = snap.OpIndex
			break
		}
	}
	tail := r.Ops[start:opIndex]
	rp := netsim.NewReplayer(n)
	var rerr error
	var applied int
	n.Batch(func() {
		for i, or := range tail {
			if err := rp.Apply(or.Op); err != nil {
				rerr = fmt.Errorf("journal: replay tail: %w", err)
				return
			}
			if got := n.StateDigest(); got != or.Digest {
				rerr = fmt.Errorf("journal: tail op %d replayed to digest %016x, journal recorded %016x (run bisect)", i, got, or.Digest)
				return
			}
			applied++
		}
	})
	if rerr != nil {
		return nil, applied, rerr
	}
	return n, len(tail), nil
}

// ReplayPrefix rebuilds the network after the first opIndex ops by serial,
// unbatched, snapshot-free replay from the first op — the trivially correct
// reference MaterializeAt is differentially tested against. O(opIndex); use
// MaterializeAt outside tests.
func (r *Recovered) ReplayPrefix(opIndex int) (*netsim.Network, error) {
	if r.Topo == nil {
		return nil, fmt.Errorf("journal: no topology record; journal does not carry a network")
	}
	if opIndex < 0 || opIndex > len(r.Ops) {
		return nil, fmt.Errorf("journal: op index %d out of range [0, %d]", opIndex, len(r.Ops))
	}
	if r.Opaque && opIndex > r.opaqueAtOp {
		return nil, fmt.Errorf("journal: opaque batch mutation after op %d poisons replay past it", r.opaqueAtOp)
	}
	n := netsim.NewNetwork(r.Topo.Build())
	rp := netsim.NewReplayer(n)
	for i, or := range r.Ops[:opIndex] {
		if err := rp.Apply(or.Op); err != nil {
			return nil, fmt.Errorf("journal: replay: %w", err)
		}
		if got := n.StateDigest(); got != or.Digest {
			return nil, fmt.Errorf("journal: op %d replayed to digest %016x, journal recorded %016x", i, got, or.Digest)
		}
	}
	return n, nil
}

// ReplayIngests feeds the recovered ingest stream into a collector as one
// batch in journal order — warm-start cost matches the batched ingest path
// instead of a record-at-a-time loop. Call it on the *inner* collector
// before wrapping with WrapCollector, so replay does not re-journal the
// records it came from.
func (r *Recovered) ReplayIngests(col core.A2ICollector) {
	if len(r.Ingests) > 0 {
		col.IngestBatch(r.Ingests)
	}
}

// Divergence names the first op at which a replayed mirror stops matching
// the journal's recorded digests.
type Divergence struct {
	// Index is the offending op's position in Recovered.Ops.
	Index int
	Op    netsim.Op
	// Want is the digest the journal recorded after this op; Got is what
	// the mirror computed. Both zero when ApplyErr is set.
	Want, Got uint64
	// ApplyErr is non-nil when the op would not even apply to the mirror
	// (e.g. it references a flow the log never started).
	ApplyErr error
}

func (d *Divergence) Error() string {
	if d.ApplyErr != nil {
		return fmt.Sprintf("journal: op %d (%v) failed to apply: %v", d.Index, d.Op.Kind, d.ApplyErr)
	}
	return fmt.Sprintf("journal: op %d (%v) diverges: mirror digest %016x, journal recorded %016x", d.Index, d.Op.Kind, d.Got, d.Want)
}

// Bisect replays the full op log, prefix by prefix, against a fresh serial
// mirror of the journaled topology and reports the first op whose
// post-apply state digest disagrees with what the writer recorded — the
// first divergent op index. nil means every prefix matches: the journal
// reproduces the run. Since each prefix extends the last by one op, the
// incremental replay checks all prefixes in one O(n) pass.
func (r *Recovered) Bisect() (*Divergence, error) {
	if r.Topo == nil {
		return nil, fmt.Errorf("journal: no topology record; nothing to bisect against")
	}
	if r.Opaque {
		return nil, fmt.Errorf("journal: log contains opaque batch mutations; bisect would diverge spuriously")
	}
	n := netsim.NewNetwork(r.Topo.Build())
	rp := netsim.NewReplayer(n)
	for i, or := range r.Ops {
		if err := rp.Apply(or.Op); err != nil {
			return &Divergence{Index: i, Op: or.Op, ApplyErr: err}, nil
		}
		if got := n.StateDigest(); got != or.Digest {
			return &Divergence{Index: i, Op: or.Op, Want: or.Digest, Got: got}, nil
		}
	}
	return nil, nil
}
