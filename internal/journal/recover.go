package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"eona/internal/core"
	"eona/internal/faults"
	"eona/internal/netsim"
)

// OpRecord is one journaled netsim op with the state digest the writer
// recorded after applying it.
type OpRecord struct {
	Op     netsim.Op
	Digest uint64
}

// SnapRecord is one journaled NetState checkpoint.
type SnapRecord struct {
	// OpIndex counts the op records that precede this snapshot; tail
	// catch-up replays Ops[OpIndex:].
	OpIndex int
	State   netsim.NetState
	Digest  uint64
}

// Recovered is everything a journal holds after tear repair: the decoded
// record streams plus what was discarded to get there. It is read-only —
// Recover never modifies the files (Open does the truncation).
type Recovered struct {
	// Topo is the journaled topology, nil if the journal has none (e.g. an
	// eona-lg journal, which carries only ingests and polls).
	Topo *netsim.TopoState
	// Snapshot is the newest intact snapshot, nil if none.
	Snapshot *SnapRecord
	// Ops holds every op record in append order, from the beginning of the
	// log — not just the tail, so Bisect can replay the whole history.
	Ops []OpRecord
	// Ingests, Faults and Polls are the non-netsim streams in append order.
	Ingests []core.QoERecord
	Faults  []faults.Event
	Polls   []PollRecord
	// Opaque reports that an opaque-batch marker was seen: some mutation
	// was not captured op-by-op, so replaying Ops does NOT reproduce the
	// writer's network. RecoverNetwork refuses in that case.
	Opaque bool
	// TruncatedBytes counts torn-tail bytes that were ignored, and
	// DroppedSegments counts segments discarded after a mid-log tear.
	TruncatedBytes  int64
	DroppedSegments int
	// Segments counts the segment files that contributed records.
	Segments int
}

// Recover reads the journal in dir, tolerating (and measuring) a torn tail:
// everything before the first tear is decoded, everything after it is
// counted into TruncatedBytes/DroppedSegments. A missing directory or one
// with no segments yields an empty Recovered, not an error — a first boot
// has no journal yet.
func Recover(dir string) (*Recovered, error) {
	rec := &Recovered{}
	segs, err := segmentFiles(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return rec, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	torn := false
	for i, name := range segs {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		if torn {
			rec.DroppedSegments++
			rec.TruncatedBytes += int64(len(data))
			continue
		}
		valid, serr := scanSegment(data, rec.apply)
		if serr != nil && !errors.Is(serr, ErrTorn) {
			return nil, fmt.Errorf("journal: segment %s: %w", name, serr)
		}
		rec.Segments = i + 1
		if serr != nil {
			torn = true
			rec.TruncatedBytes += int64(len(data) - valid)
		}
	}
	return rec, nil
}

// apply decodes one record into the Recovered streams. A record that frames
// correctly but fails its payload decode is corruption past the CRC —
// surfaced as an error, not silently skipped.
func (r *Recovered) apply(typ byte, payload []byte) error {
	switch typ {
	case recTopo:
		ts, err := decodeTopoPayload(payload)
		if err != nil {
			return err
		}
		r.Topo = &ts
	case recOp:
		op, digest, err := decodeOpPayload(payload)
		if err != nil {
			return err
		}
		r.Ops = append(r.Ops, OpRecord{Op: op, Digest: digest})
	case recNetSnap:
		opIndex, st, digest, err := decodeSnapPayload(payload)
		if err != nil {
			return err
		}
		if opIndex > uint64(len(r.Ops)) {
			return fmt.Errorf("journal: snapshot claims %d preceding ops, log has %d", opIndex, len(r.Ops))
		}
		r.Snapshot = &SnapRecord{OpIndex: int(opIndex), State: st, Digest: digest}
	case recFault:
		ev, err := decodeFaultPayload(payload)
		if err != nil {
			return err
		}
		r.Faults = append(r.Faults, ev)
	case recIngest:
		qr, err := decodeIngestPayload(payload)
		if err != nil {
			return err
		}
		r.Ingests = append(r.Ingests, qr)
	case recPoll:
		pr, err := decodePollPayload(payload)
		if err != nil {
			return err
		}
		r.Polls = append(r.Polls, pr)
	case recOpaque:
		r.Opaque = true
	default:
		return fmt.Errorf("journal: unknown record type %d", typ)
	}
	return nil
}

// RecoverNetwork rebuilds the journaled network: latest snapshot imported
// onto a fresh network over the journaled topology, then the op tail behind
// the snapshot replayed — or a full replay when no snapshot exists. Every
// step is verified against the journal's recorded digests — the imported
// snapshot and each replayed tail op must land on the digest the writer
// recorded; a mismatch means the log does not reproduce the writer's run
// (use Bisect to find where). Returns the network and the number of tail
// ops replayed.
func (r *Recovered) RecoverNetwork() (*netsim.Network, int, error) {
	if r.Topo == nil {
		return nil, 0, fmt.Errorf("journal: no topology record; journal does not carry a network")
	}
	if r.Opaque {
		return nil, 0, fmt.Errorf("journal: log contains opaque batch mutations; op replay is unsound")
	}
	n := netsim.NewNetwork(r.Topo.Build())
	tail := r.Ops
	if r.Snapshot != nil {
		if err := n.ImportState(r.Snapshot.State); err != nil {
			return nil, 0, fmt.Errorf("journal: import snapshot: %w", err)
		}
		if got := n.StateDigest(); got != r.Snapshot.Digest {
			return nil, 0, fmt.Errorf("journal: imported snapshot digest %016x != recorded %016x", got, r.Snapshot.Digest)
		}
		tail = r.Ops[r.Snapshot.OpIndex:]
	}
	rp := netsim.NewReplayer(n)
	for i, or := range tail {
		if err := rp.Apply(or.Op); err != nil {
			return nil, i, fmt.Errorf("journal: replay tail: %w", err)
		}
		if got := n.StateDigest(); got != or.Digest {
			return nil, i, fmt.Errorf("journal: tail op %d replayed to digest %016x, journal recorded %016x (run bisect)", i, got, or.Digest)
		}
	}
	return n, len(tail), nil
}

// Divergence names the first op at which a replayed mirror stops matching
// the journal's recorded digests.
type Divergence struct {
	// Index is the offending op's position in Recovered.Ops.
	Index int
	Op    netsim.Op
	// Want is the digest the journal recorded after this op; Got is what
	// the mirror computed. Both zero when ApplyErr is set.
	Want, Got uint64
	// ApplyErr is non-nil when the op would not even apply to the mirror
	// (e.g. it references a flow the log never started).
	ApplyErr error
}

func (d *Divergence) Error() string {
	if d.ApplyErr != nil {
		return fmt.Sprintf("journal: op %d (%v) failed to apply: %v", d.Index, d.Op.Kind, d.ApplyErr)
	}
	return fmt.Sprintf("journal: op %d (%v) diverges: mirror digest %016x, journal recorded %016x", d.Index, d.Op.Kind, d.Got, d.Want)
}

// Bisect replays the full op log, prefix by prefix, against a fresh serial
// mirror of the journaled topology and reports the first op whose
// post-apply state digest disagrees with what the writer recorded — the
// first divergent op index. nil means every prefix matches: the journal
// reproduces the run. Since each prefix extends the last by one op, the
// incremental replay checks all prefixes in one O(n) pass.
func (r *Recovered) Bisect() (*Divergence, error) {
	if r.Topo == nil {
		return nil, fmt.Errorf("journal: no topology record; nothing to bisect against")
	}
	if r.Opaque {
		return nil, fmt.Errorf("journal: log contains opaque batch mutations; bisect would diverge spuriously")
	}
	n := netsim.NewNetwork(r.Topo.Build())
	rp := netsim.NewReplayer(n)
	for i, or := range r.Ops {
		if err := rp.Apply(or.Op); err != nil {
			return &Divergence{Index: i, Op: or.Op, ApplyErr: err}, nil
		}
		if got := n.StateDigest(); got != or.Digest {
			return &Divergence{Index: i, Op: or.Op, Want: or.Digest, Got: got}, nil
		}
	}
	return nil, nil
}
