package journal

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"eona/internal/netsim"
)

// fuzzSegment builds a valid segment from framed records for the seed
// corpus.
func fuzzSegment(frames ...[]byte) []byte {
	seg := append([]byte(nil), segMagic...)
	for _, f := range frames {
		seg = append(seg, f...)
	}
	return seg
}

// FuzzScanSegment exercises the frame scanner with arbitrary bytes: it must
// never panic, the valid prefix it reports must re-scan cleanly to the same
// records, and nothing past the reported prefix may have been delivered.
// Run with `go test -fuzz=FuzzScanSegment ./internal/journal` for a real
// fuzzing session; the seed corpus runs as a normal unit test.
func FuzzScanSegment(f *testing.F) {
	opFrame := appendFrame(nil, recOp, appendOpPayload(nil, netsim.Op{
		Kind: netsim.OpStart, Links: []netsim.LinkID{0, 1}, Value: math.Inf(1), Tag: "fuzz",
	}, 0xDEADBEEF))
	snapFrame := appendFrame(nil, recNetSnap, appendSnapPayload(nil, 1, netsim.NetState{
		NextID: 1, Capacities: []float64{100, 80}, LinkRates: []float64{10, 10},
		Flows: []netsim.FlowState{{ID: 0, Links: []netsim.LinkID{0}, Demand: 5, Weight: 1}},
	}, 0xCAFE))
	emptyFrame := appendFrame(nil, recOpaque, nil)

	valid := fuzzSegment(opFrame, snapFrame, emptyFrame)
	f.Add(valid)
	f.Add(fuzzSegment())           // magic only
	f.Add(valid[:len(valid)-3])    // truncated tail
	f.Add(valid[:len(segMagic)+5]) // torn mid-header
	f.Add([]byte("not a journal"))
	f.Add([]byte{})

	// Flipped CRC byte.
	flipped := append([]byte(nil), valid...)
	flipped[len(segMagic)+4] ^= 0x01
	f.Add(flipped)

	// Zero-length payload with a valid frame around it.
	f.Add(fuzzSegment(appendFrame(nil, recOpaque, nil), opFrame))

	// Oversized length prefix: claims MaxFrame+1 bytes.
	over := append([]byte(nil), segMagic...)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxFrame+1)
	f.Add(append(over, hdr[:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		type recm struct {
			typ     byte
			payload []byte
		}
		var got []recm
		valid, err := scanSegment(data, func(typ byte, p []byte) error {
			got = append(got, recm{typ, append([]byte(nil), p...)})
			return nil
		})
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		if err == nil && valid != len(data) {
			t.Fatalf("clean scan consumed %d of %d bytes", valid, len(data))
		}
		if err != nil && len(data) >= len(segMagic) && bytes.Equal(data[:len(segMagic)], segMagic) && valid < len(segMagic) {
			t.Fatalf("torn scan of a magic-led segment reports prefix %d inside the magic", valid)
		}
		// The reported prefix must be self-consistent: re-scanning it is
		// clean and yields exactly the same records.
		if err == nil || valid >= len(segMagic) {
			var again []recm
			v2, err2 := scanSegment(data[:valid], func(typ byte, p []byte) error {
				again = append(again, recm{typ, append([]byte(nil), p...)})
				return nil
			})
			if err2 != nil || v2 != valid {
				t.Fatalf("re-scan of valid prefix: %d bytes, %v", v2, err2)
			}
			if len(again) != len(got) {
				t.Fatalf("re-scan yielded %d records, first scan %d", len(again), len(got))
			}
			for i := range got {
				if got[i].typ != again[i].typ || !bytes.Equal(got[i].payload, again[i].payload) {
					t.Fatalf("record %d differs across scans", i)
				}
			}
		}
	})
}

// FuzzDecodeOp: the op payload decoder must never panic and must round-trip
// whatever it accepts.
func FuzzDecodeOp(f *testing.F) {
	f.Add(appendOpPayload(nil, netsim.Op{Kind: netsim.OpStart, Links: []netsim.LinkID{0, 1, 2}, Value: math.Inf(1), Tag: "a"}, 7))
	f.Add(appendOpPayload(nil, netsim.Op{Kind: netsim.OpStop, Flow: 3}, 9))
	f.Add(appendOpPayload(nil, netsim.Op{Kind: netsim.OpSetLinkCapacity, Link: 2, Value: 55.5}, 0))
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		op, digest, err := decodeOpPayload(data)
		if err != nil {
			return
		}
		re := appendOpPayload(nil, op, digest)
		op2, d2, err2 := decodeOpPayload(re)
		if err2 != nil {
			t.Fatalf("re-encoded op failed to decode: %v", err2)
		}
		if d2 != digest || op2.Kind != op.Kind || op2.Flow != op.Flow || op2.Link != op.Link || op2.Tag != op.Tag {
			t.Fatalf("op round trip drifted: %+v vs %+v", op, op2)
		}
	})
}

// FuzzDecodeCkpt: the projection-checkpoint payload decoder must never
// panic and must round-trip whatever it accepts — name, offset, digest and
// the trailing state bytes all byte-stable through re-encode.
func FuzzDecodeCkpt(f *testing.F) {
	f.Add(appendCkptPayload(nil, "qoe", 42, Fingerprint([]byte(`{"n":7}`)), []byte(`{"n":7}`)))
	f.Add(appendCkptPayload(nil, "", 0, 0, nil))
	f.Add(appendCkptPayload(nil, "linkutil", 1<<40, 0xDEADBEEF, []byte{0, 1, 2, 0xFF}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		name, offset, digest, state, err := decodeCkptPayload(data)
		if err != nil {
			return
		}
		re := appendCkptPayload(nil, name, offset, digest, state)
		n2, o2, d2, s2, err2 := decodeCkptPayload(re)
		if err2 != nil {
			t.Fatalf("re-encoded checkpoint failed to decode: %v", err2)
		}
		if n2 != name || o2 != offset || d2 != digest || !bytes.Equal(s2, state) {
			t.Fatalf("checkpoint round trip drifted: %q/%d/%x/%x vs %q/%d/%x/%x",
				name, offset, digest, state, n2, o2, d2, s2)
		}
	})
}

// FuzzDecodeSnap: the snapshot payload decoder must never panic and must
// round-trip whatever it accepts.
func FuzzDecodeSnap(f *testing.F) {
	f.Add(appendSnapPayload(nil, 12, netsim.NetState{
		NextID: 4, MaxRate: 1e9,
		Flows:      []netsim.FlowState{{ID: 1, Links: []netsim.LinkID{0}, Demand: math.Inf(1), Weight: 2, Tag: "x"}},
		Capacities: []float64{100}, LinkRates: []float64{40},
	}, 99))
	f.Add(appendSnapPayload(nil, 0, netsim.NetState{}, 0))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		opIndex, st, digest, err := decodeSnapPayload(data)
		if err != nil {
			return
		}
		re := appendSnapPayload(nil, opIndex, st, digest)
		oi2, _, d2, err2 := decodeSnapPayload(re)
		if err2 != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err2)
		}
		if oi2 != opIndex || d2 != digest {
			t.Fatalf("snapshot round trip drifted: %d/%x vs %d/%x", opIndex, digest, oi2, d2)
		}
	})
}
