// Package player models HTTP adaptive streaming clients: buffer dynamics
// (fill at the allocated network rate, drain at the playback bitrate),
// pluggable ABR algorithms, and the connection redirections (server or CDN
// switches) that the control loops in internal/control decide on.
//
// The buffer model is the standard fluid approximation: every Tick the
// player converts downloaded bits into seconds of content at the current
// bitrate, plays one tick's worth if it has it, and stalls otherwise.
// Rebuffering, startup delay, and bitrate/CDN switch counts accumulate into
// qoe.SessionMetrics — exactly the client-side measurements EONA-A2I
// exports.
package player

import "time"

// State is the observable player state an ABR algorithm decides on.
type State struct {
	// Buffer is seconds of content buffered ahead of the playhead.
	Buffer time.Duration
	// ThroughputEMA is the smoothed observed download rate in bits/s.
	ThroughputEMA float64
	// Bitrate is the rung currently being downloaded, bits/s.
	Bitrate float64
	// Ladder is the ascending list of available rungs, bits/s.
	Ladder []float64
}

// ABR chooses the next bitrate rung given player state. Implementations
// must be deterministic.
type ABR interface {
	// Next returns the rung to download next; it must be one of
	// State.Ladder.
	Next(s State) float64
}

// RateBased is the classic throughput-rule ABR: pick the highest rung at or
// below Safety × smoothed throughput. This is the algorithm whose
// trial-and-error behaviour the paper's §2 scenarios criticize.
type RateBased struct {
	// Safety discounts measured throughput (typically 0.8–0.9).
	Safety float64
}

// Next implements ABR.
func (r RateBased) Next(s State) float64 {
	budget := r.Safety * s.ThroughputEMA
	pick := s.Ladder[0]
	for _, rung := range s.Ladder {
		if rung <= budget {
			pick = rung
		}
	}
	return pick
}

// BufferBased is a BBA-style ABR: the rung is a function of buffer
// occupancy alone — lowest rung below Low, highest above High, linear
// interpolation over the ladder in between.
type BufferBased struct {
	Low, High time.Duration
}

// Next implements ABR.
func (b BufferBased) Next(s State) float64 {
	n := len(s.Ladder)
	switch {
	case s.Buffer <= b.Low:
		return s.Ladder[0]
	case s.Buffer >= b.High:
		return s.Ladder[n-1]
	}
	frac := float64(s.Buffer-b.Low) / float64(b.High-b.Low)
	idx := int(frac * float64(n-1))
	if idx >= n {
		idx = n - 1
	}
	return s.Ladder[idx]
}

// Fixed always returns the given rung — useful as a degenerate baseline and
// in tests.
type Fixed struct{ Bitrate float64 }

// Next implements ABR.
func (f Fixed) Next(State) float64 { return f.Bitrate }

// Capped wraps another ABR and clamps its choice to at most Cap — this is
// how the EONA AppP control loop responds to an I2A access-congestion
// signal (Figure 3: "switch down bitrate to make the ISP less congested").
type Capped struct {
	Inner ABR
	// Cap is the maximum allowed rung in bits/s; 0 means no cap.
	Cap float64
}

// Next implements ABR.
func (c Capped) Next(s State) float64 {
	pick := c.Inner.Next(s)
	if c.Cap <= 0 || pick <= c.Cap {
		return pick
	}
	// Highest rung at or below the cap; lowest rung if none fit.
	best := s.Ladder[0]
	for _, rung := range s.Ladder {
		if rung <= c.Cap {
			best = rung
		}
	}
	return best
}
