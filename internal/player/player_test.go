package player

import (
	"math"
	"testing"
	"time"

	"eona/internal/netsim"
	"eona/internal/qoe"
	"eona/internal/sim"
)

// stubConn is a connection with a scriptable rate.
type stubConn struct {
	rate    float64
	demand  float64
	closed  bool
	closeCt int
}

func (c *stubConn) Rate() float64 {
	if c.demand == 0 {
		return 0
	}
	return math.Min(c.rate, c.demand)
}
func (c *stubConn) SetDemand(bps float64) { c.demand = bps }
func (c *stubConn) Close()                { c.closed = true; c.closeCt++ }

func ladder() []float64 { return []float64{300e3, 1e6, 3e6} }

func newTestPlayer(t *testing.T, e *sim.Engine, abr ABR, content time.Duration) *Player {
	t.Helper()
	return New(e, Config{Ladder: ladder(), ABR: abr}, content)
}

func TestHappyPathCompletes(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, Fixed{1e6}, 30*time.Second)
	var done bool
	p.OnComplete = func(m qoeMetrics) {
		done = true
		if m.BufferingRatio() != 0 {
			t.Errorf("buffering ratio = %v, want 0", m.BufferingRatio())
		}
		if m.PlayTime != 30*time.Second {
			t.Errorf("play time = %v, want 30s", m.PlayTime)
		}
		if m.Abandoned {
			t.Error("completed session marked abandoned")
		}
	}
	conn := &stubConn{rate: 5e6} // 5 Mbps for a ≤3 Mbps ladder: plenty
	p.Start(conn, 0)
	e.Run(5 * time.Minute)
	if !done {
		t.Fatal("session did not complete")
	}
	if !conn.closed {
		t.Error("connection not closed at completion")
	}
	if !p.Done() {
		t.Error("Done() = false after completion")
	}
}

// qoeMetrics aliases the metrics type to keep callback signatures tidy.
type qoeMetrics = qoe.SessionMetrics

func TestStartupDelayAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, Fixed{1e6}, 10*time.Second)
	// Sessions begin at the lowest rung (300 kbps); at a 300 kbps link
	// rate, the 2s startup buffer takes 2s to fill.
	conn := &stubConn{rate: 300e3}
	p.Start(conn, 0)
	e.Run(3 * time.Second)
	m := p.Metrics()
	if m.StartupDelay < 1500*time.Millisecond || m.StartupDelay > 3*time.Second {
		t.Errorf("startup delay = %v, want ≈2s", m.StartupDelay)
	}
}

func TestPenaltyDelaysStartup(t *testing.T) {
	run := func(penalty time.Duration) time.Duration {
		e := sim.NewEngine(1)
		p := newTestPlayer(t, e, Fixed{1e6}, 10*time.Second)
		p.Start(&stubConn{rate: 10e6}, penalty)
		e.Run(time.Minute)
		return p.Metrics().StartupDelay
	}
	fast, slow := run(0), run(5*time.Second)
	if slow < fast+4*time.Second {
		t.Errorf("penalty not reflected: fast=%v slow=%v", fast, slow)
	}
}

func TestStallWhenRateDrops(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, Fixed{1e6}, time.Minute)
	conn := &stubConn{rate: 2e6}
	p.Start(conn, 0)
	// After 10s, cut the network to a tenth of the bitrate.
	e.Schedule(10*time.Second, func(*sim.Engine) { conn.rate = 1e5 })
	e.Run(50 * time.Second)
	m := p.Metrics()
	if m.BufferingTime == 0 {
		t.Error("no buffering recorded despite starvation")
	}
	if !p.Stalled() {
		t.Error("player should be stalled at horizon")
	}
}

func TestStallRecovers(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, Fixed{1e6}, time.Minute)
	// 1 Mbps link matches the 1 Mbps rung, so the buffer stays small and
	// the mid-session outage produces a visible stall.
	conn := &stubConn{rate: 1e6}
	p.Start(conn, 0)
	e.Schedule(10*time.Second, func(*sim.Engine) { conn.rate = 1e4 })
	e.Schedule(25*time.Second, func(*sim.Engine) { conn.rate = 2e6 })
	e.Run(2 * time.Minute)
	m := p.Metrics()
	if m.BufferingTime < 5*time.Second {
		t.Errorf("buffering = %v, want ≥5s stall", m.BufferingTime)
	}
	if m.PlayTime != time.Minute {
		t.Errorf("play time = %v, want full minute", m.PlayTime)
	}
}

func TestBufferCapsAtTarget(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, Fixed{300e3}, 10*time.Minute)
	conn := &stubConn{rate: 100e6} // absurdly fast
	p.Start(conn, 0)
	e.Run(2 * time.Minute)
	// The fill clamp pins the buffer at the 30s target exactly; the
	// player then duty-cycles (pause at target, refill below target−4s).
	if p.Buffer() > 30*time.Second {
		t.Errorf("buffer = %v, should never exceed the 30s target", p.Buffer())
	}
	if p.Buffer() < 20*time.Second {
		t.Errorf("buffer = %v, should hover near the target on an idle link", p.Buffer())
	}
}

func TestRateBasedABRAdapts(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, RateBased{Safety: 0.85}, 2*time.Minute)
	conn := &stubConn{rate: 5e6}
	p.Start(conn, 0)
	e.Run(30 * time.Second)
	if p.Bitrate() != 3e6 {
		t.Errorf("bitrate with 5 Mbps throughput = %v, want top rung 3e6", p.Bitrate())
	}
	m := p.Metrics()
	if m.BitrateSwitches == 0 {
		t.Error("no upswitch recorded")
	}
}

func TestCappedABRRespectsSignal(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, RateBased{Safety: 0.85}, 2*time.Minute)
	conn := &stubConn{rate: 10e6}
	p.Start(conn, 0)
	e.Run(20 * time.Second)
	if p.Bitrate() != 3e6 {
		t.Fatalf("precondition: bitrate = %v, want 3e6", p.Bitrate())
	}
	// EONA congestion signal: cap at 1 Mbps.
	p.OverrideABR = Capped{Inner: RateBased{Safety: 0.85}, Cap: 1e6}
	e.Run(40 * time.Second)
	if p.Bitrate() != 1e6 {
		t.Errorf("capped bitrate = %v, want 1e6", p.Bitrate())
	}
	// Removing the override restores full adaptation.
	p.OverrideABR = nil
	e.Run(60 * time.Second)
	if p.Bitrate() != 3e6 {
		t.Errorf("restored bitrate = %v, want 3e6", p.Bitrate())
	}
}

func TestRedirectAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, Fixed{1e6}, time.Minute)
	c1 := &stubConn{rate: 2e6}
	p.Start(c1, 0)
	e.Run(10 * time.Second)
	c2 := &stubConn{rate: 2e6}
	p.Redirect(c2, time.Second, SwitchServer)
	e.Run(20 * time.Second)
	c3 := &stubConn{rate: 2e6}
	p.Redirect(c3, time.Second, SwitchCDN)
	e.Run(70 * time.Second)
	m := p.Metrics()
	if m.ServerSwitches != 1 || m.CDNSwitches != 1 {
		t.Errorf("switches = %d server / %d CDN, want 1/1", m.ServerSwitches, m.CDNSwitches)
	}
	if !c1.closed || !c2.closed {
		t.Error("old connections not closed on redirect")
	}
}

func TestRedirectCDNResetsAdaptation(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, RateBased{Safety: 0.85}, 5*time.Minute)
	p.Start(&stubConn{rate: 10e6}, 0)
	e.Run(20 * time.Second)
	if p.Bitrate() != 3e6 {
		t.Fatalf("precondition failed: bitrate %v", p.Bitrate())
	}
	p.Redirect(&stubConn{rate: 10e6}, time.Second, SwitchCDN)
	if p.Bitrate() != 300e3 {
		t.Errorf("bitrate after CDN switch = %v, want lowest rung", p.Bitrate())
	}
	if p.ThroughputEMA() != 0 {
		t.Error("throughput estimate not reset on CDN switch")
	}
}

func TestRedirectAfterDoneClosesConn(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, Fixed{300e3}, 5*time.Second)
	p.Start(&stubConn{rate: 10e6}, 0)
	e.Run(time.Minute)
	if !p.Done() {
		t.Fatal("session should be done")
	}
	late := &stubConn{rate: 1e6}
	p.Redirect(late, 0, SwitchServer)
	if !late.closed {
		t.Error("redirect after done should close the new conn")
	}
}

func TestAbort(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, Fixed{1e6}, time.Hour)
	var m qoeMetrics
	got := false
	p.OnComplete = func(mm qoeMetrics) { m = mm; got = true }
	conn := &stubConn{rate: 2e6}
	p.Start(conn, 0)
	e.Schedule(10*time.Second, func(*sim.Engine) { p.Abort() })
	e.Run(time.Minute)
	if !got {
		t.Fatal("OnComplete not fired on abort")
	}
	if !m.Abandoned {
		t.Error("abort not recorded as abandoned")
	}
	if !conn.closed {
		t.Error("connection not closed on abort")
	}
	p.Abort() // idempotent
}

func TestAvgBitrateWeighting(t *testing.T) {
	e := sim.NewEngine(1)
	p := newTestPlayer(t, e, Fixed{1e6}, time.Minute)
	p.Start(&stubConn{rate: 10e6}, 0)
	e.Run(2 * time.Minute)
	m := p.Metrics()
	// Played bitrate is charged FIFO at the rung each second of content
	// was fetched at: on this fast link the player prefetches its whole
	// 30s buffer target at the initial lowest rung before the first ABR
	// decision, so roughly half the 60s session plays 300 kbps content
	// and the rest plays 1 Mbps.
	if m.AvgBitrate < 0.55e6 || m.AvgBitrate > 1e6 {
		t.Errorf("avg bitrate = %v, want in [0.55e6, 1e6]", m.AvgBitrate)
	}
}

func TestFlowConnIntegration(t *testing.T) {
	topo := netsim.NewTopology()
	l := topo.AddLink("c", "s", 4e6, time.Millisecond, "")
	net := netsim.NewNetwork(topo)
	e := sim.NewEngine(1)
	released := false
	flow := net.StartFlow(netsim.Path{l}, 0, "session")
	conn := &FlowConn{Net: net, Flow: flow, OnClose: func() { released = true }}
	p := newTestPlayer(t, e, RateBased{Safety: 0.85}, 20*time.Second)
	p.Start(conn, 0)
	e.Run(5 * time.Minute)
	if !p.Done() {
		t.Fatal("session over netsim did not complete")
	}
	if !released {
		t.Error("OnClose not invoked")
	}
	if net.NumFlows() != 0 {
		t.Errorf("flows remaining = %d, want 0", net.NumFlows())
	}
	m := p.Metrics()
	if m.BufferingRatio() > 0.01 {
		t.Errorf("buffering over ample link = %v", m.BufferingRatio())
	}
	// Double close is safe.
	conn.Close()
}

func TestFlowConnClosedOps(t *testing.T) {
	topo := netsim.NewTopology()
	l := topo.AddLink("c", "s", 4e6, time.Millisecond, "")
	net := netsim.NewNetwork(topo)
	flow := net.StartFlow(netsim.Path{l}, 1e6, "")
	conn := &FlowConn{Net: net, Flow: flow}
	conn.Close()
	if conn.Rate() != 0 {
		t.Error("closed conn reports nonzero rate")
	}
	conn.SetDemand(5e6) // must not panic or resurrect the flow
	if net.NumFlows() != 0 {
		t.Error("SetDemand on closed conn resurrected flow")
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	cases := []func(){
		func() { New(e, Config{}, time.Minute) },
		func() { New(e, Config{Ladder: []float64{3e6, 1e6}}, time.Minute) },
		func() { New(e, Config{Ladder: ladder()}, 0) },
		func() {
			p := New(e, Config{Ladder: ladder()}, time.Minute)
			p.Start(&stubConn{}, 0)
			p.Start(&stubConn{}, 0)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSharedBottleneckFairness(t *testing.T) {
	// Two players share a 3 Mbps link; each should settle near 1.5 Mbps
	// and pick the 1 Mbps rung (0.85 safety), not stall.
	topo := netsim.NewTopology()
	l := topo.AddLink("c", "s", 3e6, time.Millisecond, "")
	net := netsim.NewNetwork(topo)
	e := sim.NewEngine(1)
	mk := func() *Player {
		flow := net.StartFlow(netsim.Path{l}, 0, "")
		p := newTestPlayer(t, e, RateBased{Safety: 0.85}, time.Minute)
		p.Start(&FlowConn{Net: net, Flow: flow}, 0)
		return p
	}
	p1, p2 := mk(), mk()
	e.Run(90 * time.Second)
	for i, p := range []*Player{p1, p2} {
		m := p.Metrics()
		if m.BufferingRatio() > 0.05 {
			t.Errorf("player %d buffering ratio = %v", i, m.BufferingRatio())
		}
		if m.AvgBitrate > 1.6e6 {
			t.Errorf("player %d avg bitrate = %v, exceeds fair share", i, m.AvgBitrate)
		}
	}
}
