package player

import (
	"fmt"
	"math"
	"sort"
	"time"

	"eona/internal/netsim"
	"eona/internal/qoe"
	"eona/internal/sim"
)

// Conn is the player's view of a network connection to one server. The
// controllers swap Conns underneath the player when they switch servers or
// CDNs.
type Conn interface {
	// Rate returns the currently allocated download rate in bits/s.
	Rate() float64
	// SetDemand sets the requested rate ceiling in bits/s (use
	// math.Inf(1) for greedy, 0 to pause).
	SetDemand(bps float64)
	// Close releases the connection's resources.
	Close()
}

// Batcher is implemented by Conns whose backing network can coalesce
// several mutations into a single fair-share reallocation (netsim's
// Network.Batch). The player uses it to make connection swaps — close old,
// attach new, reset demand — one reallocation instead of several.
type Batcher interface {
	Batch(func())
}

// batch runs fn under the conn's Batcher if it has one, else directly.
func batch(c Conn, fn func()) {
	if b, ok := c.(Batcher); ok {
		b.Batch(fn)
		return
	}
	fn()
}

// FlowConn adapts a netsim flow to the Conn interface.
type FlowConn struct {
	Net  *netsim.Network
	Flow *netsim.Flow
	// OnClose, if set, runs once when the connection closes (used to
	// release CDN server slots).
	OnClose func()

	closed bool
}

// Rate implements Conn.
func (c *FlowConn) Rate() float64 {
	if c.closed {
		return 0
	}
	return c.Flow.Rate
}

// SetDemand implements Conn.
func (c *FlowConn) SetDemand(bps float64) {
	if c.closed {
		return
	}
	c.Net.SetDemand(c.Flow, bps)
}

// Close implements Conn.
func (c *FlowConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.Net.StopFlow(c.Flow)
	if c.OnClose != nil {
		c.OnClose()
	}
}

// Batch implements Batcher by deferring the network's reallocation across a
// cluster of mutations.
func (c *FlowConn) Batch(fn func()) { c.Net.Batch(fn) }

// SwitchKind labels a Redirect for metric accounting.
type SwitchKind int

const (
	// SwitchServer is an intra-CDN server change (cheap, I2A-hinted).
	SwitchServer SwitchKind = iota
	// SwitchCDN is a whole-CDN change (the coarse knob of §2).
	SwitchCDN
)

// Config parameterizes a player. Zero fields take the documented defaults.
type Config struct {
	// Ladder is the ascending bitrate ladder in bits/s. Required.
	Ladder []float64
	// Tick is the integration step. Default 500ms.
	Tick time.Duration
	// BufferTarget is where downloading pauses. Default 30s.
	BufferTarget time.Duration
	// StartupBuffer is the content needed before playback starts.
	// Default 2s.
	StartupBuffer time.Duration
	// StallResume is the content needed to resume after a stall.
	// Default 2s.
	StallResume time.Duration
	// AdaptEvery is how often the ABR runs. Default 2s.
	AdaptEvery time.Duration
	// EMAAlpha smooths throughput samples. Default 0.25.
	EMAAlpha float64
	// ABR chooses rungs. Default RateBased{Safety: 0.85}.
	ABR ABR
}

func (c *Config) applyDefaults() {
	if len(c.Ladder) == 0 {
		panic("player: Config.Ladder is required")
	}
	if !sort.Float64sAreSorted(c.Ladder) {
		panic(fmt.Sprintf("player: ladder must ascend: %v", c.Ladder))
	}
	if c.Tick == 0 {
		c.Tick = 500 * time.Millisecond
	}
	if c.BufferTarget == 0 {
		c.BufferTarget = 30 * time.Second
	}
	if c.StartupBuffer == 0 {
		c.StartupBuffer = 2 * time.Second
	}
	if c.StallResume == 0 {
		c.StallResume = 2 * time.Second
	}
	if c.AdaptEvery == 0 {
		c.AdaptEvery = 2 * time.Second
	}
	if c.EMAAlpha == 0 {
		c.EMAAlpha = 0.25
	}
	if c.ABR == nil {
		c.ABR = RateBased{Safety: 0.85}
	}
}

// DefaultLadder is a typical streaming ladder: 300kbps to 8Mbps.
func DefaultLadder() []float64 {
	return []float64{300e3, 750e3, 1.5e6, 3e6, 4.5e6, 8e6}
}

type phase int

const (
	phaseStarting phase = iota
	phasePlaying
	phaseStalled
	phaseDone
)

// bufSeg is a run of buffered content downloaded at one rung. The buffer is
// a FIFO of these so that played seconds are charged to the bitrate the
// content was *actually fetched at*, not the rung currently downloading.
type bufSeg struct {
	dur     time.Duration
	bitrate float64
}

// Player is one adaptive streaming session.
type Player struct {
	cfg      Config
	engine   *sim.Engine
	conn     Conn
	intended time.Duration

	phase       phase
	buffer      time.Duration // total seconds of content ahead of playhead
	bufQ        []bufSeg      // FIFO of buffered content runs
	bitrate     float64
	downloading bool
	penalty     time.Duration // time before download (re)starts
	played      time.Duration
	weightedBr  float64 // ∫ bitrate d(played), for the average
	emaRate     float64
	sinceAdapt  time.Duration

	metrics  qoe.SessionMetrics
	stopTick func()

	// OnComplete fires once when the session finishes (or is aborted).
	OnComplete func(qoe.SessionMetrics)
	// OverrideABR, when non-nil, replaces the configured ABR — the hook
	// the EONA AppP controller uses to cap bitrate under I2A congestion
	// signals without restarting the player.
	OverrideABR ABR
}

// New creates a player for a session of the given content duration. Start
// must be called to begin.
func New(engine *sim.Engine, cfg Config, contentDuration time.Duration) *Player {
	cfg.applyDefaults()
	if contentDuration <= 0 {
		panic("player: content duration must be positive")
	}
	return &Player{
		cfg:      cfg,
		engine:   engine,
		intended: contentDuration,
		bitrate:  cfg.Ladder[0], // sessions start at the lowest rung
	}
}

// Start attaches the first connection and begins the session. penalty is
// the connection setup + cache-miss delay before bytes flow.
func (p *Player) Start(conn Conn, penalty time.Duration) {
	if p.conn != nil {
		panic("player: Start called twice")
	}
	p.conn = conn
	p.penalty = penalty
	p.downloading = false
	conn.SetDemand(0)
	p.stopTick = p.engine.Every(p.cfg.Tick, p.tick)
}

// Redirect swaps the connection (server or CDN switch). The buffer is
// retained — playback continues from it while the new connection spends
// penalty time in setup. kind determines which switch counter increments.
func (p *Player) Redirect(conn Conn, penalty time.Duration, kind SwitchKind) {
	if p.phase == phaseDone {
		conn.Close()
		return
	}
	// One reallocation for the whole swap: stop the old flow and park
	// the new one together.
	batch(conn, func() {
		if p.conn != nil {
			p.conn.Close()
		}
		conn.SetDemand(0)
	})
	p.conn = conn
	p.penalty = penalty
	p.downloading = false
	switch kind {
	case SwitchServer:
		p.metrics.ServerSwitches++
	case SwitchCDN:
		p.metrics.CDNSwitches++
		// A CDN switch restarts adaptation conservatively: back to
		// the lowest rung, throughput estimate reset.
		p.bitrate = p.cfg.Ladder[0]
		p.emaRate = 0
	}
}

// Buffer returns seconds of buffered content.
func (p *Player) Buffer() time.Duration { return p.buffer }

// Bitrate returns the rung currently being downloaded.
func (p *Player) Bitrate() float64 { return p.bitrate }

// Stalled reports whether playback is currently stalled (after startup).
func (p *Player) Stalled() bool { return p.phase == phaseStalled }

// Done reports whether the session has finished.
func (p *Player) Done() bool { return p.phase == phaseDone }

// ThroughputEMA returns the smoothed observed download rate.
func (p *Player) ThroughputEMA() float64 { return p.emaRate }

// Metrics returns a snapshot of the session metrics so far.
func (p *Player) Metrics() qoe.SessionMetrics {
	m := p.metrics
	if p.played > 0 {
		m.AvgBitrate = p.weightedBr / p.played.Seconds()
	}
	m.PlayTime = p.played
	return m
}

// Abort ends the session early (viewer navigated away).
func (p *Player) Abort() {
	if p.phase == phaseDone {
		return
	}
	p.metrics.Abandoned = true
	p.finish()
}

func (p *Player) finish() {
	p.phase = phaseDone
	if p.stopTick != nil {
		p.stopTick()
	}
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	if p.OnComplete != nil {
		p.OnComplete(p.Metrics())
	}
}

// drainQueue consumes d of buffered content FIFO and returns the bitrate ×
// seconds actually played (for the true average played bitrate).
func (p *Player) drainQueue(d time.Duration) float64 {
	var weighted float64
	for d > 0 && len(p.bufQ) > 0 {
		seg := &p.bufQ[0]
		take := seg.dur
		if take > d {
			take = d
		}
		weighted += seg.bitrate * take.Seconds()
		seg.dur -= take
		d -= take
		if seg.dur <= 0 {
			p.bufQ = p.bufQ[1:]
		}
	}
	// Numerical slack between the scalar total and the queue: charge the
	// current rung for any remainder.
	if d > 0 {
		weighted += p.bitrate * d.Seconds()
	}
	return weighted
}

func (p *Player) tick(*sim.Engine) bool {
	if p.phase == phaseDone {
		return false
	}
	dt := p.cfg.Tick

	// 1. Connection setup / origin-fetch penalty gates downloading.
	if p.penalty > 0 {
		if p.penalty >= dt {
			p.penalty -= dt
		} else {
			p.penalty = 0
		}
	}

	// 2. Download gating with hysteresis around the buffer target.
	canDownload := p.penalty == 0
	if canDownload {
		if p.downloading && p.buffer >= p.cfg.BufferTarget {
			canDownload = false
		}
		if !p.downloading && p.buffer >= p.cfg.BufferTarget-4*time.Second && p.buffer >= p.cfg.StartupBuffer {
			canDownload = false
		}
	}
	if canDownload != p.downloading {
		p.downloading = canDownload
		if canDownload {
			p.conn.SetDemand(math.Inf(1))
		} else {
			p.conn.SetDemand(0)
		}
	}

	// 3. Integrate the download. The fill is clamped to the buffer
	// target: a player never fetches ahead of its buffer plan, no
	// matter how fast the link is (on very fast links the tick becomes
	// a partial ON-period).
	if p.downloading {
		rate := p.conn.Rate()
		if rate > 0 {
			fill := time.Duration(rate * dt.Seconds() / p.bitrate * float64(time.Second))
			if room := p.cfg.BufferTarget - p.buffer; fill > room {
				fill = room
			}
			if fill > 0 {
				p.buffer += fill
				if n := len(p.bufQ); n > 0 && p.bufQ[n-1].bitrate == p.bitrate {
					p.bufQ[n-1].dur += fill
				} else {
					p.bufQ = append(p.bufQ, bufSeg{dur: fill, bitrate: p.bitrate})
				}
			}
		}
		if p.emaRate == 0 {
			p.emaRate = rate
		} else {
			p.emaRate = p.cfg.EMAAlpha*rate + (1-p.cfg.EMAAlpha)*p.emaRate
		}
	}

	// 4. Playback state machine.
	switch p.phase {
	case phaseStarting:
		p.metrics.StartupDelay += dt
		if p.buffer >= p.cfg.StartupBuffer {
			p.phase = phasePlaying
		}
	case phasePlaying:
		drain := dt
		if p.buffer < drain {
			drain = p.buffer
		}
		if remaining := p.intended - p.played; drain > remaining {
			drain = remaining
		}
		p.buffer -= drain
		p.played += drain
		p.weightedBr += p.drainQueue(drain)
		if p.played >= p.intended {
			p.finish()
			return false
		}
		if drain < dt {
			p.metrics.BufferingTime += dt - drain
			p.phase = phaseStalled
		}
	case phaseStalled:
		p.metrics.BufferingTime += dt
		if p.buffer >= p.cfg.StallResume {
			p.phase = phasePlaying
		}
	}

	// 5. Periodic adaptation.
	p.sinceAdapt += dt
	if p.sinceAdapt >= p.cfg.AdaptEvery {
		p.sinceAdapt = 0
		abr := p.cfg.ABR
		if p.OverrideABR != nil {
			abr = p.OverrideABR
		}
		next := abr.Next(State{
			Buffer:        p.buffer,
			ThroughputEMA: p.emaRate,
			Bitrate:       p.bitrate,
			Ladder:        p.cfg.Ladder,
		})
		if next != p.bitrate {
			p.metrics.BitrateSwitches++
			p.bitrate = next
		}
	}
	return true
}
