module eona

go 1.22
