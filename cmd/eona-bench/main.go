// Command eona-bench regenerates every experiment table from the paper
// reproduction (DESIGN.md §4, E1–E15) and prints them.
//
// Usage:
//
//	eona-bench [-seed N] [-only E2,E8] [-skip-slow]
//
// -only selects a comma-separated subset by experiment ID. -skip-slow
// omits the fleet simulations (E1, E4) and the wall-clock measurement
// (E7), which dominate runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eona"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed (results are deterministic per seed)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E2,E8); empty = all")
	skipSlow := flag.Bool("skip-slow", false, "skip the slower experiments (E1, E4, E7)")
	flag.Parse()

	want := selector(*only, *skipSlow)

	type stringer interface{ String() string }
	experiments := []struct {
		id  string
		run func() stringer
	}{
		{"E1", func() stringer { return eona.RunFlashCrowd(*seed).Table() }},
		{"E2", func() stringer { return eona.RunOscillation(*seed).Table() }},
		{"E3", func() stringer { return eona.RunInference(*seed).Table() }},
		{"E4", func() stringer { return eona.RunCoarseControl(*seed).Table() }},
		{"E5", func() stringer { return eona.RunEnergySaving(*seed).Table() }},
		{"E6", func() stringer { return eona.RunStaleness(*seed).Table() }},
		{"E7", func() stringer { return eona.RunScalability(0).Table() }},
		{"E8", func() stringer { return eona.RunInterfaceWidth(*seed).Table() }},
		{"E9", func() stringer { return eona.RunTimescales(*seed).Table() }},
		{"E10", func() stringer { return eona.RunFairness(*seed).Table() }},
		{"E11", func() stringer { return eona.RunPrivacy(*seed).Table() }},
		{"E12", func() stringer { return eona.RunFeatureSelection(*seed).Table() }},
		{"E13", func() stringer { return eona.RunWebCellular(*seed).Table() }},
		{"E14", func() stringer { return eona.RunSearchSpace(*seed).Table() }},
		{"E15", func() stringer { return eona.RunChaos(*seed).Table() }},
	}

	ran := 0
	for _, e := range experiments {
		if !want(e.id) {
			continue
		}
		fmt.Println(e.run().String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "eona-bench: no experiments selected")
		os.Exit(2)
	}
}

// slowExperiments dominate wall time: the fleet simulations and the
// wall-clock throughput measurement.
var slowExperiments = map[string]bool{"E1": true, "E4": true, "E7": true}

// selector builds the experiment filter from the -only and -skip-slow
// flags.
func selector(only string, skipSlow bool) func(id string) bool {
	selected := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	return func(id string) bool {
		if len(selected) > 0 {
			return selected[id]
		}
		return !(skipSlow && slowExperiments[id])
	}
}
