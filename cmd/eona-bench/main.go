// Command eona-bench regenerates every experiment table from the paper
// reproduction (DESIGN.md §4, E1–E15) and prints them.
//
// Usage:
//
//	eona-bench [-seed N] [-only E2,E8] [-list] [-skip-slow] [-shards 1,2,4,8] [-drivers 1,2,4] [-engine-drivers 1,2,4] [-parallel N] [-alloc] [-v]
//
// -only selects a comma-separated subset by experiment ID; -list prints
// the registry (ID, slow flag, title) and exits. -skip-slow omits the
// experiments the registry marks slow: the fleet simulations (E1, E4) and
// the wall-clock measurement (E7), which dominate runtime. -shards sets
// the shard counts swept by E7's cluster-mode ingest rows; -drivers sets
// the driver counts swept by E7's shared-network churn rows (concurrent
// goroutines pushing mutations through one owner). -engine-drivers sets
// the worker counts swept by E7's multi-driver engine rows (the lockstep
// partitioned simulation; every count is digest-checked bit-identical to
// workers=1) — its maximum also becomes the worker count the E1/E4 arms
// run under. -parallel runs that many experiments concurrently (0 =
// GOMAXPROCS); tables still print in suite order. E7's wall-clock rows
// are only meaningful at -parallel 1, since co-running experiments steal
// the cycles it is timing. -alloc widens E7's allocator churn and reaction
// rows with B/op and allocs/op columns (runtime MemStats deltas over each
// mutation loop). -v appends each table's diagnostic lines (e.g. E7's
// allocator stats counters).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"eona"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed (results are deterministic per seed)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E2,E8); empty = all")
	list := flag.Bool("list", false, "print the experiment registry and exit")
	skipSlow := flag.Bool("skip-slow", false, "skip the experiments marked slow in the registry (E1, E4, E7)")
	shards := flag.String("shards", "1,2,4,8", "comma-separated shard counts for E7's cluster-mode ingest rows")
	drivers := flag.String("drivers", "1,2,4", "comma-separated driver counts for E7's shared-network churn rows")
	engineDrivers := flag.String("engine-drivers", "1,2,4", "comma-separated worker counts for E7's multi-driver engine rows; max also drives E1/E4")
	parallel := flag.Int("parallel", 1, "experiments to run concurrently (0 = GOMAXPROCS)")
	alloc := flag.Bool("alloc", false, "add B/op and allocs/op columns to E7's allocator churn and reaction rows")
	verbose := flag.Bool("v", false, "print each table's diagnostic lines (allocator stats counters)")
	flag.Parse()

	if *list {
		for _, d := range eona.Experiments() {
			mark := " "
			if d.Slow {
				mark = "*"
			}
			fmt.Printf("%-4s %s %s\n", d.ID, mark, d.Title)
		}
		fmt.Println("\n* = slow (skipped by -skip-slow)")
		return
	}

	shardCounts, err := parseCounts("-shards", *shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eona-bench: %v\n", err)
		os.Exit(2)
	}
	driverCounts, err := parseCounts("-drivers", *drivers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eona-bench: %v\n", err)
		os.Exit(2)
	}
	engineWorkerCounts, err := parseCounts("-engine-drivers", *engineDrivers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eona-bench: %v\n", err)
		os.Exit(2)
	}
	maxWorkers := 0
	for _, w := range engineWorkerCounts {
		if w > maxWorkers {
			maxWorkers = w
		}
	}

	cfg := eona.ExperimentConfig{
		Seed: *seed,
		E7: eona.ScalabilityConfig{
			ShardCounts:        shardCounts,
			DriverCounts:       driverCounts,
			EngineWorkerCounts: engineWorkerCounts,
			MeasureAllocs:      *alloc,
		},
		EngineDrivers: maxWorkers,
	}
	want := selector(*only, *skipSlow)
	var selected []eona.Experiment
	for _, d := range eona.Experiments() {
		if want(d) {
			selected = append(selected, d.Bind(cfg))
		}
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "eona-bench: no experiments selected")
		os.Exit(2)
	}
	for _, tb := range eona.RunExperiments(selected, *parallel) {
		if *verbose {
			fmt.Println(tb.VerboseString())
		} else {
			fmt.Println(tb.String())
		}
	}
}

// selector builds the experiment filter from the -only and -skip-slow
// flags; the slow set comes from the registry, not a local list.
func selector(only string, skipSlow bool) func(d eona.ExperimentDef) bool {
	selected := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	return func(d eona.ExperimentDef) bool {
		if len(selected) > 0 {
			return selected[d.ID]
		}
		return !(skipSlow && d.Slow)
	}
}

// parseCounts parses a comma-separated count list; every entry must be a
// positive integer.
func parseCounts(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid %s entry %q (want positive integers)", flagName, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s must name at least one count", flagName)
	}
	return out, nil
}
