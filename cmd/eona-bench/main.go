// Command eona-bench regenerates every experiment table from the paper
// reproduction (DESIGN.md §4, E1–E15) and prints them.
//
// Usage:
//
//	eona-bench [-seed N] [-only E2,E8] [-skip-slow] [-shards 1,2,4,8] [-parallel N] [-v]
//
// -only selects a comma-separated subset by experiment ID. -skip-slow
// omits the fleet simulations (E1, E4) and the wall-clock measurement
// (E7), which dominate runtime. -shards sets the shard counts swept by
// E7's cluster-mode rows. -parallel runs that many experiments
// concurrently (0 = GOMAXPROCS); tables still print in suite order. E7's
// wall-clock rows are only meaningful at -parallel 1, since co-running
// experiments steal the cycles it is timing. -v appends each table's
// diagnostic lines (e.g. E7's allocator stats counters).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"eona"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed (results are deterministic per seed)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E2,E8); empty = all")
	skipSlow := flag.Bool("skip-slow", false, "skip the slower experiments (E1, E4, E7)")
	shards := flag.String("shards", "1,2,4,8", "comma-separated shard counts for E7's cluster-mode ingest rows")
	parallel := flag.Int("parallel", 1, "experiments to run concurrently (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print each table's diagnostic lines (allocator stats counters)")
	flag.Parse()

	counts, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eona-bench: %v\n", err)
		os.Exit(2)
	}

	want := selector(*only, *skipSlow)
	var selected []eona.Experiment
	for _, e := range eona.ExperimentSuite(*seed, eona.ScalabilityConfig{ShardCounts: counts}) {
		if want(e.ID) {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "eona-bench: no experiments selected")
		os.Exit(2)
	}
	for _, tb := range eona.RunExperiments(selected, *parallel) {
		if *verbose {
			fmt.Println(tb.VerboseString())
		} else {
			fmt.Println(tb.String())
		}
	}
}

// slowExperiments dominate wall time: the fleet simulations and the
// wall-clock throughput measurement.
var slowExperiments = map[string]bool{"E1": true, "E4": true, "E7": true}

// selector builds the experiment filter from the -only and -skip-slow
// flags.
func selector(only string, skipSlow bool) func(id string) bool {
	selected := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	return func(id string) bool {
		if len(selected) > 0 {
			return selected[id]
		}
		return !(skipSlow && slowExperiments[id])
	}
}

// parseShards parses the -shards list; every entry must be a positive
// integer.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -shards entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-shards must name at least one shard count")
	}
	return out, nil
}
