package main

import (
	"reflect"
	"testing"
)

func TestSelectorAll(t *testing.T) {
	want := selector("", false)
	for _, id := range []string{"E1", "E2", "E7", "E14"} {
		if !want(id) {
			t.Errorf("default selector excluded %s", id)
		}
	}
}

func TestSelectorOnly(t *testing.T) {
	want := selector("e2, E8", false)
	if !want("E2") || !want("E8") {
		t.Error("-only selections excluded")
	}
	if want("E1") || want("E3") {
		t.Error("unselected experiments included")
	}
}

func TestSelectorSkipSlow(t *testing.T) {
	want := selector("", true)
	for id := range slowExperiments {
		if want(id) {
			t.Errorf("-skip-slow included %s", id)
		}
	}
	if !want("E2") {
		t.Error("-skip-slow excluded a fast experiment")
	}
}

func TestSelectorOnlyOverridesSkipSlow(t *testing.T) {
	want := selector("E1", true)
	if !want("E1") {
		t.Error("-only E1 should include E1 even with -skip-slow")
	}
}

func TestParseShards(t *testing.T) {
	got, err := parseShards("1, 2,4,8")
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 4, 8}) {
		t.Errorf("parseShards = %v, %v; want [1 2 4 8]", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "two", "4,"} {
		if bad == "4," {
			// Trailing commas are tolerated.
			if _, err := parseShards(bad); err != nil {
				t.Errorf("parseShards(%q) rejected: %v", bad, err)
			}
			continue
		}
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}
