package main

import (
	"reflect"
	"testing"

	"eona"
)

// def returns the registry entry for an ID; the selector consumes
// definitions now, so the tests exercise it through the real registry.
func def(t *testing.T, id string) eona.ExperimentDef {
	t.Helper()
	d, ok := eona.LookupExperiment(id)
	if !ok {
		t.Fatalf("%s not in registry", id)
	}
	return d
}

func TestSelectorAll(t *testing.T) {
	want := selector("", false)
	for _, id := range []string{"E1", "E2", "E7", "E14"} {
		if !want(def(t, id)) {
			t.Errorf("default selector excluded %s", id)
		}
	}
}

func TestSelectorOnly(t *testing.T) {
	want := selector("e2, E8", false)
	if !want(def(t, "E2")) || !want(def(t, "E8")) {
		t.Error("-only selections excluded")
	}
	if want(def(t, "E1")) || want(def(t, "E3")) {
		t.Error("unselected experiments included")
	}
}

func TestSelectorSkipSlow(t *testing.T) {
	want := selector("", true)
	for _, d := range eona.Experiments() {
		if d.Slow && want(d) {
			t.Errorf("-skip-slow included %s", d.ID)
		}
	}
	if !want(def(t, "E2")) {
		t.Error("-skip-slow excluded a fast experiment")
	}
}

func TestSelectorOnlyOverridesSkipSlow(t *testing.T) {
	want := selector("E1", true)
	if !want(def(t, "E1")) {
		t.Error("-only E1 should include E1 even with -skip-slow")
	}
}

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("-shards", "1, 2,4,8")
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 4, 8}) {
		t.Errorf("parseCounts = %v, %v; want [1 2 4 8]", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "two", "4,"} {
		if bad == "4," {
			// Trailing commas are tolerated.
			if _, err := parseCounts("-drivers", bad); err != nil {
				t.Errorf("parseCounts(%q) rejected: %v", bad, err)
			}
			continue
		}
		if _, err := parseCounts("-drivers", bad); err == nil {
			t.Errorf("parseCounts(%q) accepted", bad)
		}
	}
}
