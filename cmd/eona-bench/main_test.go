package main

import "testing"

func TestSelectorAll(t *testing.T) {
	want := selector("", false)
	for _, id := range []string{"E1", "E2", "E7", "E14"} {
		if !want(id) {
			t.Errorf("default selector excluded %s", id)
		}
	}
}

func TestSelectorOnly(t *testing.T) {
	want := selector("e2, E8", false)
	if !want("E2") || !want("E8") {
		t.Error("-only selections excluded")
	}
	if want("E1") || want("E3") {
		t.Error("unselected experiments included")
	}
}

func TestSelectorSkipSlow(t *testing.T) {
	want := selector("", true)
	for id := range slowExperiments {
		if want(id) {
			t.Errorf("-skip-slow included %s", id)
		}
	}
	if !want("E2") {
		t.Error("-skip-slow excluded a fast experiment")
	}
}

func TestSelectorOnlyOverridesSkipSlow(t *testing.T) {
	want := selector("E1", true)
	if !want("E1") {
		t.Error("-only E1 should include E1 even with -skip-slow")
	}
}
