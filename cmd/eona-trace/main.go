// Command eona-trace generates and inspects workload traces — the synthetic
// stand-in for the production session logs the paper's scenarios come from.
// Traces are CSV (see internal/workload.WriteTrace) so an experiment's exact
// inputs can be archived, diffed, and replayed.
//
// Generate a flash-crowd trace:
//
//	eona-trace -profile flashcrowd -peak 1.2 -horizon 14m -out crowd.csv
//
// Generate a diurnal day:
//
//	eona-trace -profile diurnal -mean 5 -horizon 24h -out day.csv
//
// Inspect any trace:
//
//	eona-trace -inspect crowd.csv
//
// Bisect a crash-safe event journal (see internal/journal): replay its op
// log, prefix by prefix, against a fresh serial netsim mirror and report
// the first op whose post-apply state digest disagrees with what the
// journal recorded — the first divergent op. Exits 0 when the whole log
// converges, 1 on divergence:
//
//	eona-trace -bisect /var/lib/eona/sim.journal
//
// Time-travel a journal (see internal/journal.MaterializeAt): rebuild the
// network as it stood after the first N ops — the nearest preceding
// snapshot plus an O(distance) tail replay, not a full-history replay —
// and print its state. -at -1 (the default) means the end of the log:
//
//	eona-trace -journal /var/lib/eona/sim.journal -at 120
//
// Journaled fault events — scripted chaos schedules or interactive
// impairments injected through the eona-lg control plane — are listed
// alongside the materialized state.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"time"

	"eona/internal/journal"
	"eona/internal/workload"
)

func main() {
	profile := flag.String("profile", "flashcrowd", "workload profile: flashcrowd | diurnal | constant")
	base := flag.Float64("base", 0.12, "base arrival rate (sessions/s)")
	peak := flag.Float64("peak", 1.2, "flash-crowd peak rate (sessions/s)")
	mean := flag.Float64("mean", 1.0, "diurnal/constant mean rate (sessions/s)")
	horizon := flag.Duration("horizon", 14*time.Minute, "trace duration")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output CSV path (default stdout)")
	inspect := flag.String("inspect", "", "inspect an existing trace instead of generating")
	bisect := flag.String("bisect", "", "bisect an event journal's op log against a serial replay mirror")
	jdir := flag.String("journal", "", "materialize a network from an event journal (use with -at)")
	at := flag.Int("at", -1, "op index to materialize the journaled network at (-1 = end of log)")
	flag.Parse()

	if *jdir != "" {
		if err := materializeJournal(os.Stdout, *jdir, *at); err != nil {
			log.Fatalf("eona-trace: %v", err)
		}
		return
	}

	if *bisect != "" {
		diverged, err := bisectJournal(os.Stdout, *bisect)
		if err != nil {
			log.Fatalf("eona-trace: %v", err)
		}
		if diverged {
			os.Exit(1)
		}
		return
	}

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			log.Fatalf("eona-trace: %v", err)
		}
		return
	}

	var rate workload.RateFunc
	var maxRate float64
	switch *profile {
	case "flashcrowd":
		fc := workload.FlashCrowd{
			Base: *base, Peak: *peak,
			Start: *horizon / 5, RampUp: 30 * time.Second,
			Hold: *horizon / 2, Down: time.Minute,
		}
		rate, maxRate = fc.Rate(), *peak
	case "diurnal":
		d := workload.Diurnal{Mean: *mean, Amplitude: *mean * 0.7, Period: 24 * time.Hour}
		rate, maxRate = d.Rate(), *mean*1.7
	case "constant":
		rate, maxRate = workload.Constant(*mean), *mean
	default:
		log.Fatalf("eona-trace: unknown profile %q", *profile)
	}

	rng := rand.New(rand.NewSource(*seed))
	sessions := workload.Generate(rng, workload.Spec{
		Rate:    rate,
		MaxRate: maxRate,
		Horizon: *horizon,
		Groups:  workload.NewWeightedChoice([]string{"isp-a", "isp-b", "isp-c"}, []float64{5, 3, 2}),
	})

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("eona-trace: %v", err)
		}
		defer f.Close()
		dst = f
	}
	if err := workload.WriteTrace(dst, sessions); err != nil {
		log.Fatalf("eona-trace: %v", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "eona-trace: wrote %d sessions to %s\n", len(sessions), *out)
	}
}

// materializeJournal rebuilds the journaled network as it stood after the
// first at ops (-1 = the whole log) and prints a summary of the rebuilt
// state. The heavy lifting is journal.MaterializeAt: newest snapshot at or
// before the index, then an O(distance) tail replay, each replayed op
// verified against the digest the journal recorded.
func materializeJournal(w io.Writer, dir string, at int) error {
	rec, err := journal.Recover(dir)
	if err != nil {
		return err
	}
	if at < 0 || at > len(rec.Ops) {
		at = len(rec.Ops)
	}
	net, tail, err := rec.MaterializeAt(at)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "journal      : %s\n", dir)
	fmt.Fprintf(w, "ops          : %d (%d records in %d segments)\n", len(rec.Ops), len(rec.Stream), rec.Segments)
	if rec.TruncatedBytes > 0 {
		fmt.Fprintf(w, "torn tail    : %d bytes discarded\n", rec.TruncatedBytes)
	}
	fmt.Fprintf(w, "materialized : op %d\n", at)
	if tail < at {
		fmt.Fprintf(w, "snapshot     : imported at op %d, replayed %d tail ops\n", at-tail, tail)
	} else {
		fmt.Fprintf(w, "snapshot     : none usable, replayed all %d ops\n", tail)
	}
	snap := net.Snapshot()
	fmt.Fprintf(w, "network      : %d flows over %d links\n", snap.NumFlows(), net.Topology().NumLinks())
	fmt.Fprintf(w, "digest       : %016x\n", net.StateDigest())
	if len(rec.Faults) > 0 {
		fmt.Fprintf(w, "faults       : %d journaled\n", len(rec.Faults))
		for i, ev := range rec.Faults {
			if len(ev.Changes) == 0 {
				// Empty-changes events annotate partner-exchange
				// impairments (outages, latency spikes) that alter no
				// link capacities.
				fmt.Fprintf(w, "  [%d] at %-10v partner-exchange impairment\n", i, ev.At)
				continue
			}
			for _, ch := range ev.Changes {
				fmt.Fprintf(w, "  [%d] at %-10v link %d -> %.0f bps\n", i, ev.At, ch.Link, ch.Bps)
			}
		}
	}
	return nil
}

// bisectJournal recovers the journal at dir and replays its op log against
// a fresh serial mirror, reporting the first divergent op index. Returns
// whether a divergence was found; errors are setup failures (unreadable or
// topology-less journals), not divergences.
func bisectJournal(w io.Writer, dir string) (diverged bool, err error) {
	rec, err := journal.Recover(dir)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(w, "journal      : %s\n", dir)
	fmt.Fprintf(w, "segments     : %d (%d dropped after a tear)\n", rec.Segments, rec.DroppedSegments)
	fmt.Fprintf(w, "ops          : %d\n", len(rec.Ops))
	if rec.Snapshot != nil {
		fmt.Fprintf(w, "snapshot     : after op %d (%d flows)\n", rec.Snapshot.OpIndex, len(rec.Snapshot.State.Flows))
	} else {
		fmt.Fprintf(w, "snapshot     : none\n")
	}
	if rec.TruncatedBytes > 0 {
		fmt.Fprintf(w, "torn tail    : %d bytes discarded\n", rec.TruncatedBytes)
	}
	d, err := rec.Bisect()
	if err != nil {
		return false, err
	}
	if d == nil {
		fmt.Fprintf(w, "bisect       : all %d ops converge — journal reproduces the run\n", len(rec.Ops))
		return false, nil
	}
	fmt.Fprintf(w, "bisect       : FIRST DIVERGENT OP %d\n", d.Index)
	fmt.Fprintf(w, "  op         : %v flow=%d link=%d value=%v links=%v tag=%q\n",
		d.Op.Kind, d.Op.Flow, d.Op.Link, d.Op.Value, d.Op.Links, d.Op.Tag)
	if d.ApplyErr != nil {
		fmt.Fprintf(w, "  apply error: %v\n", d.ApplyErr)
	} else {
		fmt.Fprintf(w, "  digest     : mirror %016x, journal recorded %016x\n", d.Got, d.Want)
	}
	return true, nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sessions, err := workload.ReadTrace(f)
	if err != nil {
		return err
	}
	if len(sessions) == 0 {
		fmt.Println("empty trace")
		return nil
	}
	groups := map[string]int{}
	var totalDur time.Duration
	peak, window := 0, 0
	// Concurrency estimate: sliding count of sessions active at each
	// arrival instant.
	ends := make([]time.Duration, 0, len(sessions))
	for _, s := range sessions {
		groups[s.ClientGroup]++
		totalDur += s.IntendedDuration
		end := s.Arrival + s.IntendedDuration
		ends = append(ends, end)
		window = 0
		for _, e := range ends {
			if e > s.Arrival {
				window++
			}
		}
		if window > peak {
			peak = window
		}
	}
	span := sessions[len(sessions)-1].Arrival
	fmt.Printf("sessions        : %d over %s\n", len(sessions), span.Round(time.Second))
	fmt.Printf("mean duration   : %s\n", (totalDur / time.Duration(len(sessions))).Round(time.Second))
	fmt.Printf("peak concurrency: ≈%d\n", peak)
	fmt.Printf("client groups   :")
	for g, n := range groups {
		fmt.Printf(" %s=%d", g, n)
	}
	fmt.Println()
	return nil
}
