package main

import (
	"strings"
	"testing"
	"time"

	"eona/internal/journal"
	"eona/internal/netsim"
)

// writeOpJournal builds a journal by applying ops to a live network and
// recording each with its true post-apply digest — except lieAt (when >= 0),
// whose digest is journaled corrupted: a frame-valid record whose content
// lies, the tamper only bisect can catch.
func writeOpJournal(t *testing.T, dir string, lieAt int) int {
	t.Helper()
	w, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	topo := netsim.NewTopology()
	a := topo.AddLink("a", "b", 100, time.Millisecond, "")
	b := topo.AddLink("b", "c", 80, time.Millisecond, "")
	if err := w.AppendTopology(netsim.ExportTopology(topo)); err != nil {
		t.Fatal(err)
	}
	n := netsim.NewNetwork(topo)
	rp := netsim.NewReplayer(n)
	links := []netsim.LinkID{a.ID, b.ID}
	ops := []netsim.Op{
		{Kind: netsim.OpStart, Flow: 0, Links: links, Value: 40, Tag: "x"},
		{Kind: netsim.OpStart, Flow: 1, Links: links[:1], Value: 70, Tag: "y"},
		{Kind: netsim.OpSetDemand, Flow: 0, Value: 25},
		{Kind: netsim.OpSetLinkCapacity, Link: b.ID, Value: 60},
		{Kind: netsim.OpSetWeight, Flow: 1, Value: 3},
		{Kind: netsim.OpStop, Flow: 0},
	}
	for i, op := range ops {
		if err := rp.Apply(op); err != nil {
			t.Fatal(err)
		}
		digest := n.StateDigest()
		if i == lieAt {
			digest ^= 0xBAD
		}
		if err := w.AppendOp(op, digest); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return len(ops)
}

func TestBisectCleanJournal(t *testing.T) {
	dir := t.TempDir()
	total := writeOpJournal(t, dir, -1)
	var out strings.Builder
	diverged, err := bisectJournal(&out, dir)
	if err != nil {
		t.Fatal(err)
	}
	if diverged {
		t.Fatalf("clean journal reported divergent:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "all 6 ops converge") || total != 6 {
		t.Fatalf("unexpected report:\n%s", out.String())
	}
}

func TestBisectReportsFirstDivergentOp(t *testing.T) {
	dir := t.TempDir()
	writeOpJournal(t, dir, 3)
	var out strings.Builder
	diverged, err := bisectJournal(&out, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !diverged {
		t.Fatalf("divergence missed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FIRST DIVERGENT OP 3") {
		t.Fatalf("wrong divergence index:\n%s", out.String())
	}
}

func TestBisectRejectsJournalWithoutTopology(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := bisectJournal(&out, dir); err == nil {
		t.Fatal("journal without a topology bisected successfully")
	}
}
