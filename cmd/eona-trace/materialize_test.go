package main

import (
	"fmt"
	"strings"
	"testing"

	"eona/internal/journal"
)

// TestMaterializeAtEveryOp time-travels the test journal to every op index
// and checks the reported digest against a serial prefix replay — the CLI
// face of the journal's MaterializeAt differential guarantee.
func TestMaterializeAtEveryOp(t *testing.T) {
	dir := t.TempDir()
	total := writeOpJournal(t, dir, -1)
	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	for at := 0; at <= total; at++ {
		var out strings.Builder
		if err := materializeJournal(&out, dir, at); err != nil {
			t.Fatalf("at %d: %v", at, err)
		}
		want, err := rec.ReplayPrefix(at)
		if err != nil {
			t.Fatal(err)
		}
		wantDigest := fmt.Sprintf("%016x", want.StateDigest())
		if !strings.Contains(out.String(), wantDigest) {
			t.Fatalf("at %d: report missing prefix digest %s:\n%s", at, wantDigest, out.String())
		}
		if !strings.Contains(out.String(), fmt.Sprintf("materialized : op %d", at)) {
			t.Fatalf("at %d: wrong materialization point:\n%s", at, out.String())
		}
	}
}

// TestMaterializeDefaultsToEnd: -at -1 (and anything past the end) means
// the end of the log.
func TestMaterializeDefaultsToEnd(t *testing.T) {
	dir := t.TempDir()
	total := writeOpJournal(t, dir, -1)
	for _, at := range []int{-1, total + 100} {
		var out strings.Builder
		if err := materializeJournal(&out, dir, at); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), fmt.Sprintf("materialized : op %d", total)) {
			t.Fatalf("at=%d did not clamp to the end:\n%s", at, out.String())
		}
	}
}

func TestMaterializeRejectsJournalWithoutTopology(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := materializeJournal(&out, dir, -1); err == nil {
		t.Fatal("journal without a topology materialized successfully")
	}
}
