package main

import (
	"strings"
	"testing"

	"eona"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want eona.Mode
		err  bool
	}{
		{"baseline", eona.ModeBaseline, false},
		{"base", eona.ModeBaseline, false},
		{"BASELINE", eona.ModeBaseline, false},
		{"eona", eona.ModeEONA, false},
		{"EONA", eona.ModeEONA, false},
		{"whatever", eona.ModeBaseline, true},
		{"", eona.ModeBaseline, true},
	}
	for _, c := range cases {
		got, err := parseMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseMode(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("parseMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTraceString(t *testing.T) {
	if got := traceString(nil); got != "(empty)" {
		t.Errorf("empty trace = %q", got)
	}
	if got := traceString([]string{"B", "C"}); got != "B C" {
		t.Errorf("short trace = %q", got)
	}
	long := make([]string, 40)
	for i := range long {
		long[i] = "B"
	}
	got := traceString(long)
	if !strings.Contains(got, "40 decisions total") {
		t.Errorf("long trace = %q, want elision note", got)
	}
	if strings.Count(got, "B") != 16 {
		t.Errorf("long trace shows %d entries, want 16", strings.Count(got, "B"))
	}
}
