// Command eona-sim runs a parameterized Figure 5 scenario — the AppP's CDN
// choice against the ISP's egress choice — and prints the decision traces,
// so the oscillation (and its EONA fix) can be watched epoch by epoch.
//
// Usage:
//
//	eona-sim                         # both parties baseline: oscillates
//	eona-sim -appp eona -infp eona   # both EONA: converges
//	eona-sim -staleness 5m           # EONA with stale interfaces
//	eona-sim -demand 80e6            # lighter offered load
//	eona-sim -dampening              # baseline loops with backoff+hysteresis
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"eona"
)

func parseMode(s string) (eona.Mode, error) {
	switch strings.ToLower(s) {
	case "baseline", "base":
		return eona.ModeBaseline, nil
	case "eona":
		return eona.ModeEONA, nil
	default:
		return eona.ModeBaseline, fmt.Errorf("unknown mode %q (want baseline or eona)", s)
	}
}

func main() {
	appp := flag.String("appp", "baseline", "AppP control mode: baseline | eona")
	infp := flag.String("infp", "baseline", "InfP control mode: baseline | eona")
	demand := flag.Float64("demand", 150e6, "offered load in bits/s")
	horizon := flag.Duration("horizon", time.Hour, "simulated duration")
	epoch := flag.Duration("epoch", time.Minute, "measurement/control epoch")
	staleness := flag.Duration("staleness", 0, "interface delay for EONA views")
	noise := flag.Float64("noise", 0, "Laplace ε for the A2I volume estimate (0 = exact)")
	dampening := flag.Bool("dampening", false, "wrap both loops in hysteresis + backoff")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	am, err := parseMode(*appp)
	if err != nil {
		log.Fatalf("eona-sim: %v", err)
	}
	im, err := parseMode(*infp)
	if err != nil {
		log.Fatalf("eona-sim: %v", err)
	}

	cfg := eona.ScenarioConfig{
		Seed:         *seed,
		Horizon:      *horizon,
		Epoch:        *epoch,
		Demand:       func(time.Duration) float64 { return *demand },
		AppPMode:     am,
		InfPMode:     im,
		Staleness:    *staleness,
		NoiseEpsilon: *noise,
		Dampening:    *dampening,
	}
	res := eona.RunScenario(cfg)
	oracle := eona.ScenarioOracle(cfg)

	fmt.Printf("scenario: AppP=%s InfP=%s demand=%.0f Mbps staleness=%s dampening=%v\n",
		am, im, *demand/1e6, *staleness, *dampening)
	fmt.Printf("mean QoE score : %.1f (oracle %.1f)\n", res.MeanScore, oracle)
	fmt.Printf("knob switches  : ISP egress %d, AppP CDN %d over %d epochs\n",
		res.ISPSwitches, res.AppPSwitches, res.Epochs)
	if res.Oscillating {
		fmt.Printf("stability      : LIMIT CYCLE, period %d epochs\n", res.CyclePeriod)
	} else {
		fmt.Printf("stability      : converged\n")
	}
	fmt.Printf("egress trace   : %s\n", traceString(res.EgressHistory))
	fmt.Printf("CDN trace      : %s\n", traceString(res.CDNHistory))
	fmt.Printf("QoE timeline   : %s\n", res.Sparkline())
}

// traceString compresses a decision history for display, eliding long
// repeats: "B C B C ... (x30)".
func traceString(h []string) string {
	if len(h) == 0 {
		return "(empty)"
	}
	const maxShow = 16
	if len(h) <= maxShow {
		return strings.Join(h, " ")
	}
	head := strings.Join(h[:maxShow], " ")
	return fmt.Sprintf("%s ... (%d decisions total)", head, len(h))
}
