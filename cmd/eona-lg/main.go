// Command eona-lg runs a standalone EONA looking-glass server — the
// queryable interface endpoint §3 proposes ("InfPs and AppPs can establish
// 'looking glass'-like servers that can be queried to implement the
// respective interfaces").
//
// It can serve either side:
//
//	eona-lg -role appp -addr :8080 -token demo-token
//	    serves A2I: /v1/a2i/summaries, /v1/a2i/traffic
//	eona-lg -role infp -addr :8081 -token demo-token
//	    serves I2A: /v1/i2a/peering, /v1/i2a/attribution, /v1/i2a/hints
//
// Requests need "Authorization: Bearer <token>". The demo data is a small
// deterministic synthetic state so the endpoints are immediately
// explorable:
//
//	curl -H 'Authorization: Bearer demo-token' \
//	    http://localhost:8081/v1/i2a/peering?cdn=cdnX
//
// With -peer the server also polls a partner looking glass for its I2A
// peering hints, through the hardened poller (per-attempt timeouts,
// exponential backoff, circuit breaker, confidence decay). The poller's
// robustness counters are exported unauthenticated at GET /v1/health:
//
//	eona-lg -role appp -peer http://localhost:8081 -peer-token demo-token
//	curl http://localhost:8080/v1/health
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"eona"
	"eona/internal/core"
	"eona/internal/lookingglass"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	role := flag.String("role", "infp", "which side to serve: appp (A2I) or infp (I2A)")
	token := flag.String("token", "demo-token", "bearer token granted full access")
	rate := flag.Float64("rate", 50, "requests/second allowed per collaborator")
	peer := flag.String("peer", "", "base URL of a partner looking glass to poll for I2A peering hints (optional)")
	peerToken := flag.String("peer-token", "demo-token", "bearer token for the partner looking glass")
	peerInterval := flag.Duration("peer-interval", 10*time.Second, "partner polling interval")
	flag.Parse()

	store := eona.NewAuthStore()
	store.Register(*token, "demo-collaborator", eona.ScopeAdmin)
	limiter := eona.NewRateLimiter(*rate, *rate*2)

	var src eona.Sources
	switch *role {
	case "appp":
		src = apppSources()
	case "infp":
		src = infpSources()
	default:
		fmt.Fprintf(os.Stderr, "eona-lg: unknown role %q (want appp or infp)\n", *role)
		os.Exit(2)
	}

	var snap *lookingglass.Snapshot[[]core.PeeringInfo]
	if *peer != "" {
		snap = pollPeer(context.Background(), *peer, *peerToken, *peerInterval)
		log.Printf("eona-lg: polling partner %s every %v", *peer, *peerInterval)
	}

	srv := eona.NewServer(store, limiter, src)
	srv.Logf = log.Printf
	log.Printf("eona-lg: serving %s looking glass on %s (wire %s)", *role, *addr, eona.WireVersion)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(srv.Handler(), *peer, snap),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		log.Fatalf("eona-lg: %v", err)
	}
}

// pollPeer starts the hardened background poller against a partner looking
// glass: per-attempt timeouts, jittered exponential backoff while the
// partner is failing, a circuit breaker that probes half-open after a
// cooldown, and hint confidence decaying on ten polling intervals.
func pollPeer(ctx context.Context, base, token string, interval time.Duration) *lookingglass.Snapshot[[]core.PeeringInfo] {
	client := lookingglass.NewClient(base, token, nil)
	snap, _ := lookingglass.PollWith(ctx, lookingglass.PollConfig{
		Interval: interval,
		HalfLife: 10 * interval,
	}, func(ctx context.Context) ([]core.PeeringInfo, error) {
		return client.PeeringInfo(ctx, "")
	})
	return snap
}

// newMux mounts the looking-glass surfaces plus the unauthenticated
// operational health endpoint.
func newMux(lg http.Handler, peer string, snap *lookingglass.Snapshot[[]core.PeeringInfo]) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", lg)
	mux.HandleFunc("GET /v1/health", healthHandler(peer, snap))
	return mux
}

// healthPayload is the GET /v1/health document: the partner poller's
// robustness counters, or just {"breaker":"disabled"} when no partner is
// configured.
type healthPayload struct {
	Peer                string                       `json:"peer,omitempty"`
	Breaker             string                       `json:"breaker"`
	Confidence          float64                      `json:"confidence"`
	Polls               uint64                       `json:"polls"`
	Successes           uint64                       `json:"successes"`
	Failures            uint64                       `json:"failures"`
	Retries             uint64                       `json:"retries"`
	Skipped             uint64                       `json:"skipped"`
	ConsecutiveFailures int                          `json:"consecutive_failures"`
	BreakerCounters     lookingglass.BreakerCounters `json:"breaker_counters"`
	LastSuccess         *time.Time                   `json:"last_success,omitempty"`
	LastAttempt         *time.Time                   `json:"last_attempt,omitempty"`
}

func healthHandler(peer string, snap *lookingglass.Snapshot[[]core.PeeringInfo]) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if snap == nil {
			json.NewEncoder(w).Encode(healthPayload{Breaker: "disabled"})
			return
		}
		h := snap.Health(time.Now())
		p := healthPayload{
			Peer:                peer,
			Breaker:             h.Breaker.String(),
			Confidence:          h.Confidence,
			Polls:               h.Polls,
			Successes:           h.Successes,
			Failures:            h.Failures,
			Retries:             h.Retries,
			Skipped:             h.Skipped,
			ConsecutiveFailures: h.ConsecutiveFailures,
			BreakerCounters:     h.BreakerCounters,
		}
		if !h.LastSuccess.IsZero() {
			p.LastSuccess = &h.LastSuccess
		}
		if !h.LastAttempt.IsZero() {
			p.LastAttempt = &h.LastAttempt
		}
		json.NewEncoder(w).Encode(p)
	}
}

// apppSources builds an AppP's A2I surfaces from a collector fed with a
// deterministic synthetic session stream.
func apppSources() eona.Sources {
	col := eona.NewA2ICollector(eona.CollectorConfig{
		AppP:   "demo-vod",
		Policy: eona.ExportPolicy{MinGroupSessions: 2},
		Window: 5 * time.Minute,
		Seed:   42,
	})
	model := eona.DefaultModel()
	isps := []string{"isp-a", "isp-b"}
	cdns := []string{"cdnX", "cdnY"}
	for i := 0; i < 200; i++ {
		m := eona.SessionMetrics{
			StartupDelay:  time.Duration(500+i%2500) * time.Millisecond,
			PlayTime:      time.Duration(5+i%20) * time.Minute,
			BufferingTime: time.Duration(i%30) * time.Second,
			AvgBitrate:    float64(1+i%4) * 1e6,
		}
		col.Ingest(eona.RecordFrom(model, m,
			fmt.Sprintf("s%03d", i), "demo-vod", isps[i%2], cdns[i%3%2], "east",
			time.Duration(i)*time.Second))
	}
	return eona.Sources{
		QoESummaries:     col.Summaries,
		TrafficEstimates: func() []eona.TrafficEstimate { return col.TrafficEstimates(200 * time.Second) },
	}
}

// infpSources builds an InfP's I2A surfaces over a synthetic peering state
// resembling the paper's Figure 5.
func infpSources() eona.Sources {
	peering := []eona.PeeringInfo{
		{PeeringID: "B", CDN: "cdnX", Congestion: 3, HeadroomBps: 2e6, CapacityBps: 100e6, Current: true},
		{PeeringID: "C", CDN: "cdnX", Congestion: 0, HeadroomBps: 310e6, CapacityBps: 400e6},
		{PeeringID: "C", CDN: "cdnY", Congestion: 0, HeadroomBps: 310e6, CapacityBps: 400e6},
	}
	return eona.Sources{
		PeeringInfo: func(cdnName string) []eona.PeeringInfo {
			if cdnName == "" {
				return peering
			}
			var out []eona.PeeringInfo
			for _, p := range peering {
				if p.CDN == cdnName {
					out = append(out, p)
				}
			}
			return out
		},
		Attribution: func(cdnName string) (eona.Attribution, bool) {
			if cdnName != "cdnX" {
				return eona.Attribution{}, false
			}
			return eona.Attribution{
				CDN:     "cdnX",
				Segment: eona.SegmentPeering,
				Level:   3,
			}, true
		},
		ServerHints: func(cdnName, cluster string) []eona.ServerHint {
			if cluster == "" {
				cluster = "east"
			}
			return []eona.ServerHint{
				{ServerID: cluster + "-s01", Cluster: cluster, Load: 0.35, CacheLikely: true},
				{ServerID: cluster + "-s02", Cluster: cluster, Load: 0.60, CacheLikely: true},
			}
		},
	}
}
