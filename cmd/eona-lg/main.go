// Command eona-lg runs a standalone EONA looking-glass server — the
// queryable interface endpoint §3 proposes ("InfPs and AppPs can establish
// 'looking glass'-like servers that can be queried to implement the
// respective interfaces").
//
// It can serve either side:
//
//	eona-lg -role appp -addr :8080 -token demo-token
//	    serves A2I: /v1/a2i/summaries, /v1/a2i/traffic
//	eona-lg -role infp -addr :8081 -token demo-token
//	    serves I2A: /v1/i2a/peering, /v1/i2a/attribution, /v1/i2a/hints
//
// Requests need "Authorization: Bearer <token>". The demo data is a small
// deterministic synthetic state so the endpoints are immediately
// explorable:
//
//	curl -H 'Authorization: Bearer demo-token' \
//	    http://localhost:8081/v1/i2a/peering?cdn=cdnX
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"eona"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	role := flag.String("role", "infp", "which side to serve: appp (A2I) or infp (I2A)")
	token := flag.String("token", "demo-token", "bearer token granted full access")
	rate := flag.Float64("rate", 50, "requests/second allowed per collaborator")
	flag.Parse()

	store := eona.NewAuthStore()
	store.Register(*token, "demo-collaborator", eona.ScopeAdmin)
	limiter := eona.NewRateLimiter(*rate, *rate*2)

	var src eona.Sources
	switch *role {
	case "appp":
		src = apppSources()
	case "infp":
		src = infpSources()
	default:
		fmt.Fprintf(os.Stderr, "eona-lg: unknown role %q (want appp or infp)\n", *role)
		os.Exit(2)
	}

	srv := eona.NewServer(store, limiter, src)
	srv.Logf = log.Printf
	log.Printf("eona-lg: serving %s looking glass on %s (wire %s)", *role, *addr, eona.WireVersion)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("eona-lg: %v", err)
	}
}

// apppSources builds an AppP's A2I surfaces from a collector fed with a
// deterministic synthetic session stream.
func apppSources() eona.Sources {
	col := eona.NewCollector("demo-vod", eona.ExportPolicy{MinGroupSessions: 2}, 5*time.Minute, 42)
	model := eona.DefaultModel()
	isps := []string{"isp-a", "isp-b"}
	cdns := []string{"cdnX", "cdnY"}
	for i := 0; i < 200; i++ {
		m := eona.SessionMetrics{
			StartupDelay:  time.Duration(500+i%2500) * time.Millisecond,
			PlayTime:      time.Duration(5+i%20) * time.Minute,
			BufferingTime: time.Duration(i%30) * time.Second,
			AvgBitrate:    float64(1+i%4) * 1e6,
		}
		col.Ingest(eona.RecordFrom(model, m,
			fmt.Sprintf("s%03d", i), "demo-vod", isps[i%2], cdns[i%3%2], "east",
			time.Duration(i)*time.Second))
	}
	return eona.Sources{
		QoESummaries:     col.Summaries,
		TrafficEstimates: func() []eona.TrafficEstimate { return col.TrafficEstimates(200 * time.Second) },
	}
}

// infpSources builds an InfP's I2A surfaces over a synthetic peering state
// resembling the paper's Figure 5.
func infpSources() eona.Sources {
	peering := []eona.PeeringInfo{
		{PeeringID: "B", CDN: "cdnX", Congestion: 3, HeadroomBps: 2e6, CapacityBps: 100e6, Current: true},
		{PeeringID: "C", CDN: "cdnX", Congestion: 0, HeadroomBps: 310e6, CapacityBps: 400e6},
		{PeeringID: "C", CDN: "cdnY", Congestion: 0, HeadroomBps: 310e6, CapacityBps: 400e6},
	}
	return eona.Sources{
		PeeringInfo: func(cdnName string) []eona.PeeringInfo {
			if cdnName == "" {
				return peering
			}
			var out []eona.PeeringInfo
			for _, p := range peering {
				if p.CDN == cdnName {
					out = append(out, p)
				}
			}
			return out
		},
		Attribution: func(cdnName string) (eona.Attribution, bool) {
			if cdnName != "cdnX" {
				return eona.Attribution{}, false
			}
			return eona.Attribution{
				CDN:     "cdnX",
				Segment: eona.SegmentPeering,
				Level:   3,
			}, true
		},
		ServerHints: func(cdnName, cluster string) []eona.ServerHint {
			if cluster == "" {
				cluster = "east"
			}
			return []eona.ServerHint{
				{ServerID: cluster + "-s01", Cluster: cluster, Load: 0.35, CacheLikely: true},
				{ServerID: cluster + "-s02", Cluster: cluster, Load: 0.60, CacheLikely: true},
			}
		},
	}
}
