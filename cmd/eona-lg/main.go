// Command eona-lg runs a standalone EONA looking-glass server — the
// queryable interface endpoint §3 proposes ("InfPs and AppPs can establish
// 'looking glass'-like servers that can be queried to implement the
// respective interfaces").
//
// It can serve either side:
//
//	eona-lg -role appp -addr :8080 -token demo-token
//	    serves A2I: /v1/a2i/summaries, /v1/a2i/traffic
//	eona-lg -role infp -addr :8081 -token demo-token
//	    serves I2A: /v1/i2a/peering, /v1/i2a/attribution, /v1/i2a/hints
//
// Requests need "Authorization: Bearer <token>". The demo data is a small
// deterministic synthetic state so the endpoints are immediately
// explorable:
//
//	curl -H 'Authorization: Bearer demo-token' \
//	    http://localhost:8081/v1/i2a/peering?cdn=cdnX
//
// With -peer the server also polls a partner looking glass for its I2A
// peering hints, through the hardened poller (per-attempt timeouts,
// exponential backoff, circuit breaker, confidence decay). The poller's
// robustness counters are exported unauthenticated at GET /v1/health:
//
//	eona-lg -role appp -peer http://localhost:8081 -peer-token demo-token
//	curl http://localhost:8080/v1/health
//
// With -journal the server is crash-safe, and its query state is served
// from incremental projections (internal/projection): collector ingests
// and partner poll results are journaled through a projection engine that
// folds them into offset-checkpointed read models. A restart resumes each
// read model from its last committed checkpoint and refolds only the
// record tail — O(checkpoint delta), not O(history) — and the poller's
// snapshot warm-starts from the hint read model instead of waiting out a
// poll interval:
//
//	eona-lg -role appp -journal /var/lib/eona/lg.journal
//	kill -9 <pid>; eona-lg -role appp -journal /var/lib/eona/lg.journal
//	# summaries identical across the kill
//
// A journaled server also answers historical queries — time travel over
// the read models, unauthenticated like /v1/health:
//
//	curl 'http://localhost:8080/v1/history/summaries?offset=120'
//	    the QoE summaries as they stood after the first 120 journal
//	    records (omit offset, or -1, for the newest journaled state)
//
// Unless -netsim=false, the server also runs a small demo network (the
// Figure 5 topology shape) through a netsim.SharedNetwork and mounts the
// live control plane on the same /v1 surface: inspection endpoints
// (/v1/topology, /v1/links, /v1/flows, /v1/components, /v1/stats), an SSE
// metrics stream (/v1/stream), interactive impairments (/v1/impairments)
// and an embedded operations dashboard at /dashboard. Inspection needs
// scope ctl:read, impairments ctl:write; the -token admin grant covers
// both. With -journal, every interactive impairment is journaled — the op
// and its fault-event annotation replay across kill -9 like scripted
// chaos, and eona-trace lists them.
//
//	curl -H 'Authorization: Bearer demo-token' \
//	    -d '{"kind":"link-throttle","link":"peering-B","factor":0.2}' \
//	    http://localhost:8080/v1/impairments
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"eona"
	"eona/internal/core"
	"eona/internal/ctlplane"
	"eona/internal/faults"
	"eona/internal/journal"
	"eona/internal/lookingglass"
	"eona/internal/netsim"
	"eona/internal/projection"
	"eona/internal/web"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	role := flag.String("role", "infp", "which side to serve: appp (A2I) or infp (I2A)")
	token := flag.String("token", "demo-token", "bearer token granted full access")
	rate := flag.Float64("rate", 50, "requests/second allowed per collaborator")
	peer := flag.String("peer", "", "base URL of a partner looking glass to poll for I2A peering hints (optional)")
	peerToken := flag.String("peer-token", "demo-token", "bearer token for the partner looking glass")
	peerInterval := flag.Duration("peer-interval", 10*time.Second, "partner polling interval")
	journalDir := flag.String("journal", "", "journal directory: persist ingests and poll results, recover them on restart (optional)")
	journalSync := flag.String("journal-sync", "append", "journal fsync policy: append | rotate | never")
	netsimOn := flag.Bool("netsim", true, "run the demo network and mount the live control plane + dashboard")
	flag.Parse()

	store := eona.NewAuthStore()
	store.Register(*token, "demo-collaborator", eona.ScopeAdmin)
	limiter := eona.NewRateLimiter(*rate, *rate*2)

	var jw *journal.Writer
	var recovered *journal.Recovered
	if *journalDir != "" {
		pol, err := journal.ParseSyncPolicy(*journalSync)
		if err != nil {
			log.Fatalf("eona-lg: %v", err)
		}
		recovered, err = journal.Recover(*journalDir)
		if err != nil {
			log.Fatalf("eona-lg: %v", err)
		}
		jw, err = journal.Open(journal.Config{Dir: *journalDir, Sync: pol})
		if err != nil {
			log.Fatalf("eona-lg: %v", err)
		}
		defer jw.Close()
	}

	eng, qoeModel, hintModel, utilModel, err := buildEngine(jw)
	if err != nil {
		log.Fatalf("eona-lg: %v", err)
	}
	if recovered != nil {
		stats, err := eng.Resume(recovered)
		if err != nil {
			log.Fatalf("eona-lg: resume read models: %v", err)
		}
		log.Printf("eona-lg: journal %s: %d records (%d ingests, %d polls, %d torn bytes discarded); resumed qoe from tail %d, hints from tail %d",
			*journalDir, len(recovered.Stream), len(recovered.Ingests), len(recovered.Polls),
			recovered.TruncatedBytes, stats.TailFolded[qoeModel.Name()], stats.TailFolded[hintModel.Name()])
	}

	var src eona.Sources
	switch *role {
	case "appp":
		src = apppSources(eng, qoeModel)
	case "infp":
		src = infpSources()
	default:
		fmt.Fprintf(os.Stderr, "eona-lg: unknown role %q (want appp or infp)\n", *role)
		os.Exit(2)
	}

	start := time.Now()
	var live *faults.Live
	if *peer != "" {
		live = faults.NewLive(faults.WallClock(start))
	}

	var snap *lookingglass.Snapshot[[]core.PeeringInfo]
	if *peer != "" {
		snap = pollPeer(context.Background(), *peer, *peerToken, *peerInterval, eng, hintModel, live)
		log.Printf("eona-lg: polling partner %s every %v", *peer, *peerInterval)
	}

	var history http.HandlerFunc
	if recovered != nil {
		history = summariesHistory(recovered)
	}

	var ctl *ctlplane.Server
	if *netsimOn {
		shared, topo, err := buildDemoNetwork(eng, recovered)
		if err != nil {
			log.Fatalf("eona-lg: demo network: %v", err)
		}
		defer shared.Close()
		ctl, err = ctlplane.New(ctlplane.Config{
			Shared:   shared,
			Topo:     topo,
			Engine:   eng,
			LinkUtil: utilModel,
			QoE:      qoeModel,
			Partner:  live,
			Clock:    faults.WallClock(start),
			Logf:     log.Printf,
		})
		if err != nil {
			log.Fatalf("eona-lg: control plane: %v", err)
		}
		log.Printf("eona-lg: control plane on /v1 (%d links, %d flows); dashboard at /dashboard",
			topo.NumLinks(), shared.NumFlows())
	}

	srv := eona.NewServer(store, limiter, src)
	srv.Logf = log.Printf
	log.Printf("eona-lg: serving %s looking glass on %s (wire %s)", *role, *addr, eona.WireVersion)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           newRouter(srv, *peer, snap, history, ctl),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		log.Fatalf("eona-lg: %v", err)
	}
}

// collectorConfig is the demo AppP's collector shape, shared by the live
// QoE read model and historical materializations so time-travel answers
// come from the same blinding policy the live surface applies.
func collectorConfig() core.CollectorConfig {
	return core.CollectorConfig{
		AppP:   "demo-vod",
		Policy: core.ExportPolicy{MinGroupSessions: 2},
		Window: 5 * time.Minute,
		Seed:   42,
	}
}

// buildEngine assembles the server's projection engine: the QoE rollup,
// I2A hint, and link-utilization read models folding every journaled
// record. With jw nil the engine runs fold-only — read models stay live,
// nothing persists.
func buildEngine(jw *journal.Writer) (*projection.Engine, *projection.QoE, *projection.Hints, *projection.LinkUtil, error) {
	qoeModel := projection.NewQoE(collectorConfig())
	hintModel := projection.NewHints()
	utilModel := projection.NewLinkUtil()
	eng, err := projection.NewEngine(projection.Config{Writer: jw, CheckpointEvery: 64}, qoeModel, hintModel, utilModel)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return eng, qoeModel, hintModel, utilModel, nil
}

// demoTopology is the control plane's demo network: the Figure 5 shape —
// a client access link into isp-a, two peering paths toward cdnX (the
// congested B and the spare-capacity C), and a transit path toward cdnY.
func demoTopology() *netsim.Topology {
	topo := netsim.NewTopology()
	topo.AddLink("clients", "isp-a", 100e6, 5*time.Millisecond, "access")
	topo.AddLink("isp-a", "cdnX", 100e6, 10*time.Millisecond, "peering-B")
	topo.AddLink("isp-a", "cdnX", 400e6, 12*time.Millisecond, "peering-C")
	topo.AddLink("isp-a", "cdnY", 80e6, 15*time.Millisecond, "transit-Y")
	return topo
}

// buildDemoNetwork owns the control plane's network lifecycle. On a fresh
// boot it journals the topology, builds the shared network and seeds the
// demo flows through it — so every seed op is journaled too. On a restart
// from a journal that already carries a topology it replays the op log
// instead (MaterializeAt over every op), which reproduces the crashed
// process's network — seeded flows, operator impairments and all — and
// resumes journaling from there.
func buildDemoNetwork(eng *projection.Engine, rec *journal.Recovered) (*netsim.SharedNetwork, *netsim.Topology, error) {
	if rec != nil && rec.Topo != nil {
		net, _, err := rec.MaterializeAt(len(rec.Ops))
		if err != nil {
			return nil, nil, err
		}
		shared := netsim.NewShared(net, netsim.SharedConfig{Journal: eng, SnapshotEvery: 32})
		log.Printf("eona-lg: demo network replayed from journal (%d ops, %d flows)",
			len(rec.Ops), shared.NumFlows())
		return shared, net.Topology(), nil
	}
	topo := demoTopology()
	if err := eng.AppendTopology(netsim.ExportTopology(topo)); err != nil {
		return nil, nil, err
	}
	net := netsim.NewNetwork(topo)
	shared := netsim.NewShared(net, netsim.SharedConfig{Journal: eng, SnapshotEvery: 32})
	seedDemoFlows(shared, topo)
	return shared, topo, nil
}

// seedDemoFlows starts a deterministic set of sessions across the three
// egress paths so the dashboard has live traffic to show.
func seedDemoFlows(shared *netsim.SharedNetwork, topo *netsim.Topology) {
	links := topo.Links()
	access := links[0]
	egress := []*netsim.Link{links[1], links[2], links[3]}
	for i := 0; i < 12; i++ {
		path := netsim.Path{access, egress[i%3]}
		shared.StartFlow(path, float64(2+i%4)*1e6, fmt.Sprintf("sess-%02d", i))
	}
	shared.Commit()
}

// summariesHistory serves GET /v1/history/summaries over the journal as
// recovered at boot: MaterializeAt rebuilds the QoE read model at the
// requested stream offset in O(distance to its nearest checkpoint).
func summariesHistory(rec *journal.Recovered) http.HandlerFunc {
	return lookingglass.HistoryHandler(
		func() int { return len(rec.Stream) },
		func(offset int) (any, error) {
			q := projection.NewQoE(collectorConfig())
			if err := projection.MaterializeAt(rec, offset, q); err != nil {
				return nil, err
			}
			return q.Summaries(), nil
		})
}

// pollPeer starts the hardened background poller against a partner looking
// glass: per-attempt timeouts, jittered exponential backoff while the
// partner is failing, a circuit breaker that probes half-open after a
// cooldown, and hint confidence decaying on ten polling intervals. Every
// successful poll is appended through the projection engine — journaled
// when one is attached, and folded into the hint read model either way —
// and the snapshot warm-starts from that read model's newest hint for this
// peer: confidence decays from its original fetch time, so a restart
// inherits last-known-good hints at an honest trust level instead of
// starting blind.
// A non-nil live gate threads the control plane's partner impairments into
// the fetch path: operator-injected outages and latency spikes hit this
// poller exactly like real partner failures would.
func pollPeer(ctx context.Context, base, token string, interval time.Duration, eng *projection.Engine, hintModel *projection.Hints, live *faults.Live) *lookingglass.Snapshot[[]core.PeeringInfo] {
	client := lookingglass.NewClient(base, token, nil)
	fetch := faults.Gate(live, func(ctx context.Context) ([]core.PeeringInfo, error) {
		v, err := client.PeeringInfo(ctx, "")
		if err == nil && eng != nil {
			if data, merr := json.Marshal(v); merr == nil {
				_ = eng.AppendPoll(journal.PollRecord{Source: base, At: time.Now().UTC(), Data: data})
			}
		}
		return v, err
	})
	snap, _ := lookingglass.PollWith(ctx, lookingglass.PollConfig{
		Interval: interval,
		HalfLife: 10 * interval,
	}, fetch)
	if hintModel != nil {
		if pr, ok := hintModel.Latest(base); ok {
			var v []core.PeeringInfo
			if err := json.Unmarshal(pr.Data, &v); err == nil {
				snap.Seed(v, pr.At)
			}
		}
	}
	return snap
}

// newRouter composes the whole /v1 surface onto one route registry: the
// looking-glass endpoints (scoped a2i:read / i2a:read), the unauthenticated
// operational endpoints (/v1/health always, /v1/history/summaries when the
// server is journal-backed), and — when the control plane is up — its
// inspection/impairment/stream routes plus the dashboard page. Every
// registered route shares the registry's bearer-token guard and the unified
// {"error":{...}} envelope. A nil srv (tests) yields a registry with no
// scoped routes.
func newRouter(srv *lookingglass.Server, peer string, snap *lookingglass.Snapshot[[]core.PeeringInfo], history http.HandlerFunc, ctl *ctlplane.Server) http.Handler {
	var rt *lookingglass.Routes
	if srv != nil {
		rt = srv.Routes()
	} else {
		rt = lookingglass.NewRoutes(nil, nil)
	}
	rt.HandleFunc("GET", "/v1/health", healthHandler(peer, snap))
	if history != nil {
		rt.HandleFunc("GET", "/v1/history/summaries", history)
	}
	if ctl != nil {
		ctl.Register(rt)
		dash := web.DashboardHandler()
		rt.HandleFunc("GET", "/", dash)
		rt.HandleFunc("GET", "/dashboard", dash)
	}
	return rt.Handler()
}

// healthPayload is the GET /v1/health document: the partner poller's
// robustness counters, or just {"breaker":"disabled"} when no partner is
// configured.
type healthPayload struct {
	Peer                string                       `json:"peer,omitempty"`
	Breaker             string                       `json:"breaker"`
	Confidence          float64                      `json:"confidence"`
	Polls               uint64                       `json:"polls"`
	Successes           uint64                       `json:"successes"`
	Failures            uint64                       `json:"failures"`
	Retries             uint64                       `json:"retries"`
	Skipped             uint64                       `json:"skipped"`
	ConsecutiveFailures int                          `json:"consecutive_failures"`
	BreakerCounters     lookingglass.BreakerCounters `json:"breaker_counters"`
	LastSuccess         *time.Time                   `json:"last_success,omitempty"`
	LastAttempt         *time.Time                   `json:"last_attempt,omitempty"`
}

func healthHandler(peer string, snap *lookingglass.Snapshot[[]core.PeeringInfo]) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if snap == nil {
			json.NewEncoder(w).Encode(healthPayload{Breaker: "disabled"})
			return
		}
		h := snap.Health(time.Now())
		p := healthPayload{
			Peer:                peer,
			Breaker:             h.Breaker.String(),
			Confidence:          h.Confidence,
			Polls:               h.Polls,
			Successes:           h.Successes,
			Failures:            h.Failures,
			Retries:             h.Retries,
			Skipped:             h.Skipped,
			ConsecutiveFailures: h.ConsecutiveFailures,
			BreakerCounters:     h.BreakerCounters,
		}
		if !h.LastSuccess.IsZero() {
			p.LastSuccess = &h.LastSuccess
		}
		if !h.LastAttempt.IsZero() {
			p.LastAttempt = &h.LastAttempt
		}
		json.NewEncoder(w).Encode(p)
	}
}

// apppSources builds an AppP's A2I surfaces from the QoE read model. On a
// first boot (nothing folded yet) the deterministic synthetic session
// stream is fed through the engine — journaled when a journal is attached,
// folded into the read model either way. On a restart the caller has
// already Resumed the engine, so the read model holds the journaled
// history and the synthetic feed is skipped: the rollups come back exactly
// as the crashed process had them, without re-journaling history.
func apppSources(eng *projection.Engine, qoeModel *projection.QoE) eona.Sources {
	if qoeModel.Ingested() == 0 {
		feedSyntheticSessions(eng)
	}
	return eona.Sources{
		QoESummaries:     qoeModel.Summaries,
		TrafficEstimates: func() []eona.TrafficEstimate { return qoeModel.TrafficEstimates(200 * time.Second) },
	}
}

// feedSyntheticSessions ingests the deterministic demo session stream
// through the projection engine.
func feedSyntheticSessions(eng *projection.Engine) {
	model := eona.DefaultModel()
	isps := []string{"isp-a", "isp-b"}
	cdns := []string{"cdnX", "cdnY"}
	for i := 0; i < 200; i++ {
		m := eona.SessionMetrics{
			StartupDelay:  time.Duration(500+i%2500) * time.Millisecond,
			PlayTime:      time.Duration(5+i%20) * time.Minute,
			BufferingTime: time.Duration(i%30) * time.Second,
			AvgBitrate:    float64(1+i%4) * 1e6,
		}
		if err := eng.AppendIngest(eona.RecordFrom(model, m,
			fmt.Sprintf("s%03d", i), "demo-vod", isps[i%2], cdns[i%3%2], "east",
			time.Duration(i)*time.Second)); err != nil {
			log.Printf("eona-lg: journal ingest: %v", err)
		}
	}
}

// infpSources builds an InfP's I2A surfaces over a synthetic peering state
// resembling the paper's Figure 5.
func infpSources() eona.Sources {
	peering := []eona.PeeringInfo{
		{PeeringID: "B", CDN: "cdnX", Congestion: 3, HeadroomBps: 2e6, CapacityBps: 100e6, Current: true},
		{PeeringID: "C", CDN: "cdnX", Congestion: 0, HeadroomBps: 310e6, CapacityBps: 400e6},
		{PeeringID: "C", CDN: "cdnY", Congestion: 0, HeadroomBps: 310e6, CapacityBps: 400e6},
	}
	return eona.Sources{
		PeeringInfo: func(cdnName string) []eona.PeeringInfo {
			if cdnName == "" {
				return peering
			}
			var out []eona.PeeringInfo
			for _, p := range peering {
				if p.CDN == cdnName {
					out = append(out, p)
				}
			}
			return out
		},
		Attribution: func(cdnName string) (eona.Attribution, bool) {
			if cdnName != "cdnX" {
				return eona.Attribution{}, false
			}
			return eona.Attribution{
				CDN:     "cdnX",
				Segment: eona.SegmentPeering,
				Level:   3,
			}, true
		},
		ServerHints: func(cdnName, cluster string) []eona.ServerHint {
			if cluster == "" {
				cluster = "east"
			}
			return []eona.ServerHint{
				{ServerID: cluster + "-s01", Cluster: cluster, Load: 0.35, CacheLikely: true},
				{ServerID: cluster + "-s02", Cluster: cluster, Load: 0.60, CacheLikely: true},
			}
		},
	}
}
