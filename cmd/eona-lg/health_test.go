package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"eona"
)

func TestHealthEndpointWithPeer(t *testing.T) {
	store := eona.NewAuthStore()
	store.Register("demo-token", "demo", eona.ScopeAdmin)

	// Partner looking glass (the InfP side we poll).
	peerSrv := eona.NewServer(store, nil, infpSources())
	peerTS := httptest.NewServer(peerSrv.Handler())
	defer peerTS.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap := pollPeer(ctx, peerTS.URL, "demo-token", 5*time.Millisecond, nil, nil, nil)

	// Local server with the health endpoint mounted alongside the
	// looking-glass surfaces.
	local := eona.NewServer(store, nil, foldOnlyAppp(t))
	ts := httptest.NewServer(newRouter(local, peerTS.URL, snap, nil, nil))
	defer ts.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, ok := snap.Get(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer poller never succeeded")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d", resp.StatusCode)
	}
	var p healthPayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Peer != peerTS.URL {
		t.Errorf("peer = %q, want %q", p.Peer, peerTS.URL)
	}
	if p.Breaker != "closed" {
		t.Errorf("breaker = %q, want closed", p.Breaker)
	}
	if p.Polls == 0 || p.Successes == 0 {
		t.Errorf("counters not populated: %+v", p)
	}
	if p.Confidence <= 0.5 {
		t.Errorf("confidence = %v, want fresh (> 0.5)", p.Confidence)
	}
	if p.LastSuccess == nil || p.LastAttempt == nil {
		t.Errorf("timestamps missing: %+v", p)
	}

	// The looking-glass surfaces must still be served through the mux.
	client := eona.NewClient(ts.URL, "demo-token")
	cctx, ccancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer ccancel()
	if sums, err := client.QoESummaries(cctx); err != nil || len(sums) == 0 {
		t.Errorf("looking-glass surface broken behind mux: %v (%d summaries)", err, len(sums))
	}
}

func TestHealthEndpointWithoutPeer(t *testing.T) {
	ts := httptest.NewServer(newRouter(nil, "", nil, nil, nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p healthPayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Breaker != "disabled" || p.Peer != "" {
		t.Errorf("no-peer health = %+v, want disabled", p)
	}
}
