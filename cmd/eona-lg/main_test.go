package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"eona"
	"eona/internal/core"
	"eona/internal/journal"
)

func serveRole(t *testing.T, src eona.Sources) *eona.Client {
	t.Helper()
	store := eona.NewAuthStore()
	store.Register("demo-token", "demo", eona.ScopeAdmin)
	srv := eona.NewServer(store, nil, src)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return eona.NewClient(ts.URL, "demo-token")
}

func TestApppSourcesServeA2I(t *testing.T) {
	client := serveRole(t, apppSources(nil, nil))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	sums, err := client.QoESummaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 {
		t.Fatal("demo AppP exports no summaries")
	}
	for _, s := range sums {
		if s.Sessions < 2 {
			t.Errorf("group %+v below the demo k-anonymity floor", s.Key)
		}
		if s.MeanScore < 0 || s.MeanScore > 100 {
			t.Errorf("score out of range: %+v", s)
		}
	}

	traffic, err := client.TrafficEstimates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traffic) == 0 {
		t.Fatal("demo AppP exports no traffic estimates")
	}
}

// TestJournalRestartRebuildsCollector pins the eona-lg crash/recover cycle
// at the source-construction layer: a first boot feeds (and journals) the
// synthetic sessions; a restart rebuilds the collector from the journal
// instead, serving identical summaries — and without re-journaling history.
func TestJournalRestartRebuildsCollector(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	src1 := apppSources(w, nil)
	sum1 := src1.QoESummaries()
	traffic1 := src1.TrafficEstimates()
	if len(sum1) == 0 {
		t.Fatal("first boot served no summaries")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ingests) != 200 {
		t.Fatalf("journal holds %d ingests, want the 200 synthetic sessions", len(rec.Ingests))
	}

	w2, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	src2 := apppSources(w2, rec.Ingests)
	if got := src2.QoESummaries(); !reflect.DeepEqual(got, sum1) {
		t.Fatalf("recovered summaries differ:\n%+v\n%+v", got, sum1)
	}
	if got := src2.TrafficEstimates(); !reflect.DeepEqual(got, traffic1) {
		t.Fatalf("recovered traffic estimates differ:\n%+v\n%+v", got, traffic1)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Ingests) != 200 {
		t.Fatalf("restart re-journaled history: %d ingests", len(rec2.Ingests))
	}
}

// TestPollPeerSeedsFromJournal: a restart warm-starts the peer snapshot
// from the newest journaled poll for that peer, at its original fetch time.
func TestPollPeerSeedsFromJournal(t *testing.T) {
	hints := []core.PeeringInfo{{PeeringID: "B", CDN: "cdnX", HeadroomBps: 2e6}}
	data, err := json.Marshal(hints)
	if err != nil {
		t.Fatal(err)
	}
	fetchedAt := time.Now().Add(-42 * time.Second).UTC()
	recovered := []journal.PollRecord{
		{Source: "http://other/", At: fetchedAt.Add(-time.Hour), Data: []byte(`[]`)},
		{Source: "http://peer/", At: fetchedAt, Data: data},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap := pollPeer(ctx, "http://peer/", "tok", time.Hour, nil, recovered)
	v, at, ok := snap.Get()
	if !ok {
		t.Fatal("snapshot not seeded")
	}
	if !at.Equal(fetchedAt) {
		t.Fatalf("seeded at %v, want original fetch time %v", at, fetchedAt)
	}
	if !reflect.DeepEqual(v, hints) {
		t.Fatalf("seeded value %+v, want %+v", v, hints)
	}
}

func TestInfpSourcesServeI2A(t *testing.T) {
	client := serveRole(t, infpSources())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	all, err := client.PeeringInfo(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("peering infos = %d, want 3", len(all))
	}
	onlyX, err := client.PeeringInfo(ctx, "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyX) != 2 {
		t.Errorf("cdnX peering infos = %d, want 2", len(onlyX))
	}
	current := 0
	for _, p := range onlyX {
		if p.Current {
			current++
		}
	}
	if current != 1 {
		t.Errorf("current egress flags = %d, want exactly 1", current)
	}

	att, err := client.Attribution(ctx, "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if att.Segment != eona.SegmentPeering {
		t.Errorf("attribution segment = %v, want peering", att.Segment)
	}
	if _, err := client.Attribution(ctx, "cdnZ"); err == nil {
		t.Error("unknown CDN attribution should 404")
	}

	hints, err := client.ServerHints(ctx, "cdnX", "west")
	if err != nil {
		t.Fatal(err)
	}
	if len(hints) != 2 || hints[0].Cluster != "west" {
		t.Errorf("hints = %+v", hints)
	}
}
