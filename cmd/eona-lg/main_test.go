package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"eona"
	"eona/internal/core"
	"eona/internal/journal"
	"eona/internal/projection"
)

func serveRole(t *testing.T, src eona.Sources) *eona.Client {
	t.Helper()
	store := eona.NewAuthStore()
	store.Register("demo-token", "demo", eona.ScopeAdmin)
	srv := eona.NewServer(store, nil, src)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return eona.NewClient(ts.URL, "demo-token")
}

// foldOnlyAppp builds the appp sources over a fold-only projection engine
// (no journal), as a journal-less server does.
func foldOnlyAppp(t *testing.T) eona.Sources {
	t.Helper()
	eng, qoeModel, _, _, err := buildEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	return apppSources(eng, qoeModel)
}

func TestApppSourcesServeA2I(t *testing.T) {
	client := serveRole(t, foldOnlyAppp(t))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	sums, err := client.QoESummaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 {
		t.Fatal("demo AppP exports no summaries")
	}
	for _, s := range sums {
		if s.Sessions < 2 {
			t.Errorf("group %+v below the demo k-anonymity floor", s.Key)
		}
		if s.MeanScore < 0 || s.MeanScore > 100 {
			t.Errorf("score out of range: %+v", s)
		}
	}

	traffic, err := client.TrafficEstimates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traffic) == 0 {
		t.Fatal("demo AppP exports no traffic estimates")
	}
}

// TestJournalRestartResumesReadModels pins the eona-lg crash/recover cycle
// at the source-construction layer: a first boot feeds (and journals) the
// synthetic sessions through the projection engine, committing read-model
// checkpoints on cadence; a restart resumes from the newest checkpoint and
// refolds only the tail, serving identical summaries — without
// re-journaling history and without refolding the whole stream.
func TestJournalRestartResumesReadModels(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	eng1, qoe1, _, _, err := buildEngine(w)
	if err != nil {
		t.Fatal(err)
	}
	src1 := apppSources(eng1, qoe1)
	sum1 := src1.QoESummaries()
	traffic1 := src1.TrafficEstimates()
	if len(sum1) == 0 {
		t.Fatal("first boot served no summaries")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ingests) != 200 {
		t.Fatalf("journal holds %d ingests, want the 200 synthetic sessions", len(rec.Ingests))
	}
	if len(rec.Checkpoints) == 0 {
		t.Fatal("first boot committed no read-model checkpoints")
	}

	w2, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	eng2, qoe2, _, _, err := buildEngine(w2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng2.Resume(rec)
	if err != nil {
		t.Fatal(err)
	}
	if tail := stats.TailFolded[qoe2.Name()]; tail >= len(rec.Stream) {
		t.Fatalf("resume refolded the whole stream (%d records); checkpoint unused", tail)
	}
	src2 := apppSources(eng2, qoe2)
	if got := src2.QoESummaries(); !reflect.DeepEqual(got, sum1) {
		t.Fatalf("recovered summaries differ:\n%+v\n%+v", got, sum1)
	}
	if got := src2.TrafficEstimates(); !reflect.DeepEqual(got, traffic1) {
		t.Fatalf("recovered traffic estimates differ:\n%+v\n%+v", got, traffic1)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Ingests) != 200 {
		t.Fatalf("restart re-journaled history: %d ingests", len(rec2.Ingests))
	}
}

// TestPollPeerSeedsFromHintModel: a restart warm-starts the peer snapshot
// from the hint read model's newest poll for that peer, at its original
// fetch time.
func TestPollPeerSeedsFromHintModel(t *testing.T) {
	hints := []core.PeeringInfo{{PeeringID: "B", CDN: "cdnX", HeadroomBps: 2e6}}
	data, err := json.Marshal(hints)
	if err != nil {
		t.Fatal(err)
	}
	fetchedAt := time.Now().Add(-42 * time.Second).UTC()
	hintModel := projection.NewHints()
	hintModel.FoldPoll(journal.PollRecord{Source: "http://other/", At: fetchedAt.Add(-time.Hour), Data: []byte(`[]`)})
	hintModel.FoldPoll(journal.PollRecord{Source: "http://peer/", At: fetchedAt, Data: data})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	snap := pollPeer(ctx, "http://peer/", "tok", time.Hour, nil, hintModel, nil)
	v, at, ok := snap.Get()
	if !ok {
		t.Fatal("snapshot not seeded")
	}
	if !at.Equal(fetchedAt) {
		t.Fatalf("seeded at %v, want original fetch time %v", at, fetchedAt)
	}
	if !reflect.DeepEqual(v, hints) {
		t.Fatalf("seeded value %+v, want %+v", v, hints)
	}
}

// TestHistorySummariesEndpoint: a journaled boot's history is queryable at
// any stream offset; the newest offset equals the live surface, offset 0
// is empty, and out-of-range offsets are client errors.
func TestHistorySummariesEndpoint(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	eng, qoeModel, _, _, err := buildEngine(w)
	if err != nil {
		t.Fatal(err)
	}
	src := apppSources(eng, qoeModel)
	liveSums := src.QoESummaries()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(newRouter(nil, "", nil, summariesHistory(rec), nil))
	defer ts.Close()

	get := func(q string) (int, *struct {
		Offset    int               `json:"offset"`
		MaxOffset int               `json:"max_offset"`
		Data      []core.QoESummary `json:"data"`
	}) {
		resp, err := http.Get(ts.URL + "/v1/history/summaries" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, nil
		}
		out := &struct {
			Offset    int               `json:"offset"`
			MaxOffset int               `json:"max_offset"`
			Data      []core.QoESummary `json:"data"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	// Newest offset reproduces the live surface.
	code, hr := get("")
	if code != http.StatusOK {
		t.Fatalf("history status = %d", code)
	}
	if hr.Offset != len(rec.Stream) || hr.MaxOffset != len(rec.Stream) {
		t.Fatalf("newest offset = %d/%d, want %d", hr.Offset, hr.MaxOffset, len(rec.Stream))
	}
	if !reflect.DeepEqual(hr.Data, liveSums) {
		t.Fatalf("historical summaries at the end differ from live:\n%+v\n%+v", hr.Data, liveSums)
	}

	// Offset 0 is the empty beginning of history.
	if code, hr = get("?offset=0"); code != http.StatusOK || len(hr.Data) != 0 {
		t.Fatalf("offset 0 → %d with %d summaries, want empty", code, len(hr.Data))
	}

	// A mid-history offset must answer without error (fewer or equal
	// groups than the end).
	if code, hr = get("?offset=100"); code != http.StatusOK || len(hr.Data) > len(liveSums) {
		t.Fatalf("offset 100 → %d with %d summaries", code, len(hr.Data))
	}

	// Beyond the end is a client error.
	if code, _ = get("?offset=1000000"); code != http.StatusBadRequest {
		t.Fatalf("beyond-end offset → %d, want 400", code)
	}
}

// TestDemoNetworkReplaysAcrossRestart pins the control plane's crash
// story: a restart materializes the demo network from the journaled op
// log, so the seeded flows and any operator capacity edits (impairments)
// survive a kill -9 instead of resetting to the pristine topology.
func TestDemoNetworkReplaysAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	eng, _, _, _, err := buildEngine(w)
	if err != nil {
		t.Fatal(err)
	}
	shared, topo, err := buildDemoNetwork(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shared.NumFlows() != 12 {
		t.Fatalf("seeded %d flows, want 12", shared.NumFlows())
	}
	throttled := topo.Links()[1].ID
	shared.SetLinkCapacity(throttled, 25e6)
	shared.Commit()
	shared.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	eng2, _, _, _, err := buildEngine(w2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Resume(rec); err != nil {
		t.Fatal(err)
	}
	shared2, topo2, err := buildDemoNetwork(eng2, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer shared2.Close()
	if shared2.NumFlows() != 12 {
		t.Fatalf("replayed %d flows, want 12", shared2.NumFlows())
	}
	if got := shared2.Snapshot().Capacity(topo2.Links()[1].ID); got != 25e6 {
		t.Fatalf("replayed capacity = %v, want the journaled throttle 25e6", got)
	}
}

func TestInfpSourcesServeI2A(t *testing.T) {
	client := serveRole(t, infpSources())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	all, err := client.PeeringInfo(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("peering infos = %d, want 3", len(all))
	}
	onlyX, err := client.PeeringInfo(ctx, "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyX) != 2 {
		t.Errorf("cdnX peering infos = %d, want 2", len(onlyX))
	}
	current := 0
	for _, p := range onlyX {
		if p.Current {
			current++
		}
	}
	if current != 1 {
		t.Errorf("current egress flags = %d, want exactly 1", current)
	}

	att, err := client.Attribution(ctx, "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if att.Segment != eona.SegmentPeering {
		t.Errorf("attribution segment = %v, want peering", att.Segment)
	}
	if _, err := client.Attribution(ctx, "cdnZ"); err == nil {
		t.Error("unknown CDN attribution should 404")
	}

	hints, err := client.ServerHints(ctx, "cdnX", "west")
	if err != nil {
		t.Fatal(err)
	}
	if len(hints) != 2 || hints[0].Cluster != "west" {
		t.Errorf("hints = %+v", hints)
	}
}
