package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"eona"
)

func serveRole(t *testing.T, src eona.Sources) *eona.Client {
	t.Helper()
	store := eona.NewAuthStore()
	store.Register("demo-token", "demo", eona.ScopeAdmin)
	srv := eona.NewServer(store, nil, src)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return eona.NewClient(ts.URL, "demo-token")
}

func TestApppSourcesServeA2I(t *testing.T) {
	client := serveRole(t, apppSources())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	sums, err := client.QoESummaries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 {
		t.Fatal("demo AppP exports no summaries")
	}
	for _, s := range sums {
		if s.Sessions < 2 {
			t.Errorf("group %+v below the demo k-anonymity floor", s.Key)
		}
		if s.MeanScore < 0 || s.MeanScore > 100 {
			t.Errorf("score out of range: %+v", s)
		}
	}

	traffic, err := client.TrafficEstimates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traffic) == 0 {
		t.Fatal("demo AppP exports no traffic estimates")
	}
}

func TestInfpSourcesServeI2A(t *testing.T) {
	client := serveRole(t, infpSources())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	all, err := client.PeeringInfo(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("peering infos = %d, want 3", len(all))
	}
	onlyX, err := client.PeeringInfo(ctx, "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyX) != 2 {
		t.Errorf("cdnX peering infos = %d, want 2", len(onlyX))
	}
	current := 0
	for _, p := range onlyX {
		if p.Current {
			current++
		}
	}
	if current != 1 {
		t.Errorf("current egress flags = %d, want exactly 1", current)
	}

	att, err := client.Attribution(ctx, "cdnX")
	if err != nil {
		t.Fatal(err)
	}
	if att.Segment != eona.SegmentPeering {
		t.Errorf("attribution segment = %v, want peering", att.Segment)
	}
	if _, err := client.Attribution(ctx, "cdnZ"); err == nil {
		t.Error("unknown CDN attribution should 404")
	}

	hints, err := client.ServerHints(ctx, "cdnX", "west")
	if err != nil {
		t.Fatal(err)
	}
	if len(hints) != 2 || hints[0].Cluster != "west" {
		t.Errorf("hints = %+v", hints)
	}
}
