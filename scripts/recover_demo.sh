#!/bin/sh
# Kill-and-catch-up demo (`make recover`): boot an AppP looking glass with a
# durable journal, capture its A2I summaries, kill -9 the process, restart it
# on the same journal, and diff the summaries across the crash. The restarted
# server rebuilds the collector's rollups from the journaled ingest stream,
# so the two captures must be byte-identical.
# Usage: scripts/recover_demo.sh [port]
set -eu
cd "$(dirname "$0")/.."

port="${1:-18097}"
base="http://127.0.0.1:$port"
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/eona-lg" ./cmd/eona-lg

start_lg() {
	"$tmp/eona-lg" -role appp -addr "127.0.0.1:$port" -journal "$tmp/journal" \
		>>"$tmp/lg.log" 2>&1 &
	pid=$!
	i=0
	until curl -sf "$base/v1/health" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "recover demo: server never came up; log:" >&2
			cat "$tmp/lg.log" >&2
			exit 1
		fi
		sleep 0.05
	done
}

# The wire envelope stamps generated_at_ms with the serving time; strip it
# so the comparison is over the recovered payload, not the wall clock.
fetch_summaries() {
	curl -sf -H 'Authorization: Bearer demo-token' "$base/v1/a2i/summaries" |
		sed 's/"generated_at_ms":[0-9]*/"generated_at_ms":0/'
}

echo "recover demo: booting eona-lg -role appp -journal $tmp/journal on :$port"
start_lg
fetch_summaries >"$tmp/before.json"
echo "recover demo: captured $(wc -c <"$tmp/before.json") bytes of summaries; kill -9 $pid"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "recover demo: restarting on the same journal"
start_lg
fetch_summaries >"$tmp/after.json"
grep -o 'journal [^ ]* [0-9]* records[^"]*' "$tmp/lg.log" | tail -1 | sed 's/^/recover demo: /' || true

if ! cmp -s "$tmp/before.json" "$tmp/after.json"; then
	echo "recover demo: FAIL — summaries differ across the crash" >&2
	diff "$tmp/before.json" "$tmp/after.json" >&2 || true
	exit 1
fi
echo "recover demo: OK — summaries identical across kill -9 + journal recovery"
