#!/bin/sh
# Time-travel demo (`make timetravel`): journal an AppP looking-glass run,
# then restart onto it and capture the history endpoint at three stream
# offsets (empty past, mid-history, newest); kill -9 and restart again, and
# re-query the same offsets. Historical answers are pure functions of the
# journal prefix, so every capture must be byte-identical across the crash —
# and the newest offset must carry as many summary groups as the live
# surface serves. (The history endpoint serves the journal as recovered at
# boot, so the first boot — which writes the history — is only a populator.)
# Usage: scripts/timetravel_demo.sh [port]
set -eu
cd "$(dirname "$0")/.."

port="${1:-18098}"
base="http://127.0.0.1:$port"
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/eona-lg" ./cmd/eona-lg

start_lg() {
	"$tmp/eona-lg" -role appp -addr "127.0.0.1:$port" -journal "$tmp/journal" \
		>>"$tmp/lg.log" 2>&1 &
	pid=$!
	i=0
	until curl -sf "$base/v1/health" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "timetravel demo: server never came up; log:" >&2
			cat "$tmp/lg.log" >&2
			exit 1
		fi
		sleep 0.05
	done
}

hist() {
	curl -sf "$base/v1/history/summaries?offset=$1"
}

stop_lg() {
	kill -9 "$pid"
	wait "$pid" 2>/dev/null || true
	pid=""
}

echo "timetravel demo: booting eona-lg -role appp -journal $tmp/journal on :$port (populate)"
start_lg
stop_lg

echo "timetravel demo: restarting onto the journaled history"
start_lg

max=$(hist -1 | sed 's/.*"max_offset":\([0-9]*\).*/\1/')
if [ -z "$max" ] || [ "$max" -lt 2 ]; then
	echo "timetravel demo: FAIL — journal stream too short (max_offset=$max)" >&2
	exit 1
fi
mid=$((max / 2))
offsets="0 $mid $max"
echo "timetravel demo: journal holds $max records; querying offsets $offsets"
for off in $offsets; do
	hist "$off" >"$tmp/before-$off.json"
done
if ! grep -q '"data":\[\]\|"data":null' "$tmp/before-0.json"; then
	echo "timetravel demo: FAIL — offset 0 is not the empty beginning of history" >&2
	cat "$tmp/before-0.json" >&2
	exit 1
fi
if hist $((max + 1)) >/dev/null 2>&1; then
	echo "timetravel demo: FAIL — offset beyond the journal end was accepted" >&2
	exit 1
fi

echo "timetravel demo: kill -9 $pid; restarting on the same journal"
stop_lg
start_lg
grep -o 'journal [^ ]* [0-9]* records[^"]*' "$tmp/lg.log" | tail -1 | sed 's/^/timetravel demo: /' || true

for off in $offsets; do
	hist "$off" >"$tmp/after-$off.json"
	if ! cmp -s "$tmp/before-$off.json" "$tmp/after-$off.json"; then
		echo "timetravel demo: FAIL — history at offset $off differs across the crash" >&2
		diff "$tmp/before-$off.json" "$tmp/after-$off.json" >&2 || true
		exit 1
	fi
done

# The newest offset must reproduce the live surface: same group count as
# /v1/a2i/summaries serves (the envelope differs, the rollups must not).
live_groups=$(curl -sf -H 'Authorization: Bearer demo-token' "$base/v1/a2i/summaries" |
	grep -o '"sessions":' | wc -l)
hist_groups=$(grep -o '"sessions":' "$tmp/after-$max.json" | wc -l)
if [ "$live_groups" -ne "$hist_groups" ]; then
	echo "timetravel demo: FAIL — newest offset has $hist_groups groups, live serves $live_groups" >&2
	exit 1
fi

echo "timetravel demo: OK — offsets $offsets byte-identical across kill -9; newest matches live ($live_groups groups)"
