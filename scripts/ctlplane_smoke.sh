#!/bin/sh
# Control-plane smoke (`make dashboard`): boot eona-lg journaled with the
# demo network, drive the /v1 control plane end to end — inspect links,
# inject a link-throttle impairment, stream a few SSE samples — then
# kill -9 and restart on the same journal. The restart must replay the
# impairment (the throttled capacity survives the crash), eona-trace must
# list the journaled fault events, and a /v1/history/summaries offset
# straddling the impairment must answer byte-identically across the crash.
# SERVE=1 skips the crash drill and leaves the server running with the
# dashboard URL printed.
# Usage: scripts/ctlplane_smoke.sh [port]
set -eu
cd "$(dirname "$0")/.."

port="${1:-18099}"
base="http://127.0.0.1:$port"
auth='Authorization: Bearer demo-token'
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/eona-lg" ./cmd/eona-lg
go build -o "$tmp/eona-trace" ./cmd/eona-trace

start_lg() {
	"$tmp/eona-lg" -role appp -addr "127.0.0.1:$port" -journal "$tmp/journal" \
		>>"$tmp/lg.log" 2>&1 &
	pid=$!
	i=0
	until curl -sf "$base/v1/health" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "ctlplane smoke: server never came up; log:" >&2
			cat "$tmp/lg.log" >&2
			exit 1
		fi
		sleep 0.05
	done
}

stop_lg() {
	kill -9 "$pid"
	wait "$pid" 2>/dev/null || true
	pid=""
}

cap_of() {
	# capacity_bps of the named link from GET /v1/links.
	curl -sf -H "$auth" "$base/v1/links" |
		tr '{' '\n' | grep "\"name\":\"$1\"" |
		sed 's/.*"capacity_bps":\([0-9.e+]*\).*/\1/'
}

echo "ctlplane smoke: booting eona-lg with the demo network on :$port"
start_lg

if [ "${SERVE:-}" = "1" ]; then
	echo "ctlplane smoke: serving — dashboard at $base/dashboard (token: demo-token); ctrl-C to stop"
	trap - EXIT
	wait "$pid"
	exit 0
fi

# Scope guard: the control plane must refuse unauthenticated reads with
# the unified envelope.
if curl -sf "$base/v1/links" >/dev/null 2>&1; then
	echo "ctlplane smoke: FAIL — /v1/links served without a token" >&2
	exit 1
fi
curl -s "$base/v1/links" | grep -q '"error"' || {
	echo "ctlplane smoke: FAIL — 401 is not the unified envelope" >&2
	exit 1
}

before_cap=$(cap_of peering-B)
echo "ctlplane smoke: peering-B at $before_cap bps; injecting a 0.25x throttle"
curl -sf -H "$auth" -d '{"kind":"link-throttle","link":"peering-B","factor":0.25}' \
	"$base/v1/impairments" >"$tmp/impairment.json"
grep -q '"active":true' "$tmp/impairment.json" || {
	echo "ctlplane smoke: FAIL — impairment not active: $(cat "$tmp/impairment.json")" >&2
	exit 1
}

after_cap=$(cap_of peering-B)
if [ "$after_cap" = "$before_cap" ]; then
	echo "ctlplane smoke: FAIL — capacity unchanged after throttle ($after_cap)" >&2
	exit 1
fi

# The SSE stream must deliver samples carrying the throttled link.
curl -sfN -H "$auth" "$base/v1/stream?interval=100ms&count=3" >"$tmp/stream.txt"
samples=$(grep -c '^data: ' "$tmp/stream.txt")
if [ "$samples" -ne 3 ]; then
	echo "ctlplane smoke: FAIL — wanted 3 SSE samples, got $samples" >&2
	exit 1
fi
grep -q '"active_impairments":1' "$tmp/stream.txt" || {
	echo "ctlplane smoke: FAIL — stream does not report the active impairment" >&2
	exit 1
}

echo "ctlplane smoke: kill -9 $pid; restarting on the same journal"
stop_lg
start_lg

replayed_cap=$(cap_of peering-B)
if [ "$replayed_cap" != "$after_cap" ]; then
	echo "ctlplane smoke: FAIL — throttle did not survive the crash ($replayed_cap vs $after_cap)" >&2
	exit 1
fi

# History straddling the impairment: the journal (recovered at this boot)
# now contains the fault, so the newest offset's answer is a pure function
# of the stream — it must be byte-identical across another kill -9.
max=$(curl -sf "$base/v1/history/summaries" | sed 's/.*"max_offset":\([0-9]*\).*/\1/')
if [ -z "$max" ] || [ "$max" -lt 1 ]; then
	echo "ctlplane smoke: FAIL — journal stream empty after restart (max_offset=$max)" >&2
	exit 1
fi
curl -sf "$base/v1/history/summaries?offset=$max" >"$tmp/hist-before.json"

echo "ctlplane smoke: kill -9 $pid again; history at offset $max must not move"
stop_lg
start_lg

still_cap=$(cap_of peering-B)
if [ "$still_cap" != "$after_cap" ]; then
	echo "ctlplane smoke: FAIL — throttle lost on the second restart ($still_cap vs $after_cap)" >&2
	exit 1
fi
curl -sf "$base/v1/history/summaries?offset=$max" >"$tmp/hist-after.json"
if ! cmp -s "$tmp/hist-before.json" "$tmp/hist-after.json"; then
	echo "ctlplane smoke: FAIL — history at offset $max differs across the crash" >&2
	exit 1
fi

stop_lg
"$tmp/eona-trace" -journal "$tmp/journal" >"$tmp/trace.txt"
grep -q 'faults       : 1 journaled' "$tmp/trace.txt" || {
	echo "ctlplane smoke: FAIL — eona-trace does not list the journaled fault:" >&2
	cat "$tmp/trace.txt" >&2
	exit 1
}

echo "ctlplane smoke: OK — impairment journaled, replayed across kill -9, listed by eona-trace ($replayed_cap bps); history byte-identical"
echo "ctlplane smoke: run 'SERVE=1 make dashboard' to explore the UI at $base/dashboard"
