#!/bin/sh
# Tier-1 gate (same as `make check`): gofmt, build, vet, race-enabled tests.
set -eu
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go build ./...
go vet ./...
# Fast-fail on the concurrency-heavy packages (sharded collector, merge
# primitives, shared network + snapshots, looking-glass pollers, event
# journal, control plane + SSE streaming) and the allocator/control-loop
# packages (component registry, reaction coalescing) before the full sweep.
go test -race ./internal/core/... ./internal/agg/... ./internal/netsim/... \
	./internal/control/... ./internal/lookingglass/... ./internal/journal/... \
	./internal/projection/... ./internal/ctlplane/...
# The crash-injection sweep: kill the journal at every record boundary (and
# seeded mid-record offsets) on every topology fixture; recovery must equal
# a from-scratch serial replay of the surviving prefix. The projection sweep
# does the same at every checkpoint/offset-commit boundary: resumed read
# models must equal a from-scratch fold of the surviving prefix.
go test -race -run 'TestCrashAtEveryRecordBoundary|TestOpenRepairsTornTail|TestTornMiddleSegmentDropsLater' \
	./internal/journal/
go test -race -run 'TestProjectionCrashSweep|TestResumeEqualsFromScratchFold|TestMaterializeAtDifferentialSweep' \
	./internal/projection/
# The E7 shared-network driver arm: concurrent drivers against one owner
# goroutine, hammered under the race detector.
go test -race -run 'TestE7SharedDriverArm|TestE7DriverSweepSkips' ./internal/expt/
# The multi-driver engine determinism pin: worker-pool lockstep runs vs the
# serial reference on every topology fixture, under the race detector.
go test -race -run 'TestEngineArmDifferentialOnFixtures|TestParallel' ./internal/expt/ ./internal/sim/
go test -race ./...
# Hot paths can't quietly regress: key benchmarks vs the latest recording.
scripts/bench_gate.sh
