#!/bin/sh
# Bench regression gate: rerun key benchmarks (min of 3+ counts per metric)
# and compare against the latest recorded BENCH_<yyyy-mm-dd>.json.
# Fails when any shared benchmark:
#   - regressed ns/op by more than 20%,
#   - allocates more allocs/op than recorded (zero-alloc steady states must
#     stay zero-alloc),
#   - regressed B/op beyond max(1.2x, +16 bytes) of the recorded value.
# Skips cleanly when nothing has been recorded yet or when no benchmark
# names overlap (e.g. a machine with a different core count suffixes names
# differently).
# Usage: scripts/bench_gate.sh [pattern]
set -eu
cd "$(dirname "$0")/.."

# Default to the stable hot-path benchmarks: single-threaded collector
# ingest, incremental reallocation, steady-state churn, snapshot reads
# under writes, journal append, and the lockstep engine's serial instant
# loop, plus the projection hot paths: the incremental fold, checkpoint-
# seeded materialization and the live (allocation-free) projected query.
# The multi-worker and sharded variants are deliberately excluded —
# their timings are scheduler-bound and too noisy for a 20% gate,
# especially on small machines. (go test treats each unbracketed "|"
# alternative as its own slash-separated pattern, so the /workers-1 below
# filters only the ParallelEngineInstants sub-benchmarks.)
pattern="${1:-^BenchmarkCollectorIngest\$|ParallelEngineInstants/workers-1|ReallocateIncremental|ChurnRails|ChurnSkewed|SharedReadScaling|^BenchmarkJournalAppend\$|^BenchmarkProjectionFold\$|^BenchmarkMaterializeAt\$|^BenchmarkProjectedQuery\$}"
latest=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
if [ -z "$latest" ]; then
	echo "bench gate: no BENCH_*.json recorded; skipping"
	exit 0
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

gate_check() {
	awk -v latest="$1" '
	# Pass 1: recorded metrics by benchmark name (our JSON keeps one
	# benchmark per line).
	NR == FNR {
		if (match($0, /"name": "[^"]+"/)) {
			name = substr($0, RSTART + 9, RLENGTH - 10)
			if (match($0, /"ns\/op": [0-9.eE+-]+/))
				rec[name] = substr($0, RSTART + 9, RLENGTH - 9) + 0
			if (match($0, /"B\/op": [0-9.eE+-]+/))
				recb[name] = substr($0, RSTART + 8, RLENGTH - 8) + 0
			if (match($0, /"allocs\/op": [0-9.eE+-]+/))
				reca[name] = substr($0, RSTART + 13, RLENGTH - 13) + 0
		}
		next
	}
	# Pass 2: fresh runs — keep each name'\''s min per metric across counts.
	/^Benchmark/ {
		for (i = 3; i + 1 <= NF; i += 2) {
			v = $i + 0
			u = $(i + 1)
			if (u == "ns/op" && (!($1 in fresh) || v < fresh[$1])) fresh[$1] = v
			if (u == "B/op" && (!($1 in freshb) || v < freshb[$1])) freshb[$1] = v
			if (u == "allocs/op" && (!($1 in fresha) || v < fresha[$1])) fresha[$1] = v
		}
	}
	END {
		checked = failed = 0
		for (name in fresh) {
			if (!(name in rec) || rec[name] <= 0) continue
			checked++
			ratio = fresh[name] / rec[name]
			printf "bench gate: %-55s recorded %.0f ns/op, now %.0f ns/op (%.2fx)\n", name, rec[name], fresh[name], ratio
			if (ratio > 1.20) {
				failed++
				printf "bench gate: FAIL %s regressed more than 20%% (ns/op)\n", name
			}
			if ((name in reca) && (name in fresha) && fresha[name] > reca[name]) {
				failed++
				printf "bench gate: FAIL %s allocs/op rose: recorded %d, now %d\n", name, reca[name], fresha[name]
			}
			if ((name in recb) && (name in freshb)) {
				limit = recb[name] * 1.2
				if (limit < recb[name] + 16) limit = recb[name] + 16
				if (freshb[name] > limit) {
					failed++
					printf "bench gate: FAIL %s B/op rose: recorded %d, now %d (limit %.0f)\n", name, recb[name], freshb[name], limit
				}
			}
		}
		if (checked == 0) {
			print "bench gate: no overlapping benchmarks with " latest "; skipping"
			exit 0
		}
		if (failed > 0) exit 1
		printf "bench gate: %d benchmark(s) within bounds of %s\n", checked, latest
	}
	' "$1" "$2"
}

# Timing noise only ever inflates ns/op (scheduler steal, a co-running
# process), so the gate keeps the min per metric and, on failure, retries
# with the fresh samples accumulating into the same pool — a transiently
# loaded machine converges to the true floor instead of failing the build.
# Alloc counts are load-insensitive, so those gates are as strict on the
# first attempt as the last.
attempts=3
for attempt in $(seq "$attempts"); do
	go test -run '^$' -bench "$pattern" -benchtime 0.3s -count 5 -benchmem \
		./internal/sim/... ./internal/core/... ./internal/netsim/... \
		./internal/journal/... ./internal/projection/... >>"$tmp"
	if gate_check "$latest" "$tmp"; then
		exit 0
	fi
	if [ "$attempt" -lt "$attempts" ]; then
		echo "bench gate: over bounds on attempt $attempt/$attempts; re-measuring (min accumulates)"
	fi
done
exit 1
