#!/bin/sh
# Bench regression gate: rerun key benchmarks (min ns/op of 3 counts) and
# compare against the latest recorded BENCH_<yyyy-mm-dd>.json; fail when any
# shared benchmark regressed by more than 20%. Skips cleanly when nothing
# has been recorded yet or when no benchmark names overlap (e.g. a machine
# with a different core count suffixes names differently).
# Usage: scripts/bench_gate.sh [pattern]
set -eu
cd "$(dirname "$0")/.."

# Default to the stable hot-path benchmarks: single-threaded collector
# ingest, incremental reallocation, and the lockstep engine's serial
# instant loop. The multi-worker and sharded variants are deliberately
# excluded — their timings are scheduler-bound and too noisy for a 20%
# gate, especially on small machines. (go test treats each unbracketed
# "|" alternative as its own slash-separated pattern, so the /workers-1
# below filters only the ParallelEngineInstants sub-benchmarks.)
pattern="${1:-^BenchmarkCollectorIngest\$|ParallelEngineInstants/workers-1|ReallocateIncremental}"
latest=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
if [ -z "$latest" ]; then
	echo "bench gate: no BENCH_*.json recorded; skipping"
	exit 0
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench "$pattern" -benchtime 0.3s -count 5 \
	./internal/sim/... ./internal/core/... ./internal/netsim/... >"$tmp"

awk -v latest="$latest" '
	# Pass 1: recorded ns/op by benchmark name (our JSON keeps one
	# benchmark per line).
	NR == FNR {
		if (match($0, /"name": "[^"]+"/)) {
			name = substr($0, RSTART + 9, RLENGTH - 10)
			if (match($0, /"ns\/op": [0-9.eE+-]+/))
				rec[name] = substr($0, RSTART + 9, RLENGTH - 9) + 0
		}
		next
	}
	# Pass 2: fresh runs — keep each name'\''s min ns/op across counts.
	/^Benchmark/ {
		for (i = 3; i + 1 <= NF; i += 2) if ($(i + 1) == "ns/op") {
			v = $i + 0
			if (!($1 in fresh) || v < fresh[$1]) fresh[$1] = v
		}
	}
	END {
		checked = failed = 0
		for (name in fresh) {
			if (!(name in rec) || rec[name] <= 0) continue
			checked++
			ratio = fresh[name] / rec[name]
			printf "bench gate: %-55s recorded %.0f ns/op, now %.0f ns/op (%.2fx)\n", name, rec[name], fresh[name], ratio
			if (ratio > 1.20) {
				failed++
				printf "bench gate: FAIL %s regressed more than 20%%\n", name
			}
		}
		if (checked == 0) {
			print "bench gate: no overlapping benchmarks with " latest "; skipping"
			exit 0
		}
		if (failed > 0) exit 1
		printf "bench gate: %d benchmark(s) within 20%% of %s\n", checked, latest
	}
' "$latest" "$tmp"
