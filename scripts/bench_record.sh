#!/bin/sh
# Record the collector and allocator micro-benchmarks to a dated JSON file
# (BENCH_<yyyy-mm-dd>.json in the repo root), so perf regressions are
# diffable across commits. Usage: scripts/bench_record.sh [benchtime]
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
out="BENCH_$(date +%F).json"

cpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
gomaxprocs="${GOMAXPROCS:-$cpus}"

go test -run '^$' -bench 'Collector|Sharded|Realloc|Churn|Coalesc|SharedRead|ParallelEngine|EngineArm|Journal|Projection|Projected|MaterializeAt' -benchmem \
	-benchtime "$benchtime" ./internal/core/... ./internal/netsim/... ./internal/control/... \
	./internal/sim/... ./internal/expt/... ./internal/journal/... ./internal/projection/... |
	awk -v date="$(date +%F)" -v goversion="$(go env GOVERSION)" \
		-v gomaxprocs="$gomaxprocs" -v cpus="$cpus" '
	BEGIN {
		printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"cpus\": %s,\n  \"benchmarks\": [", date, goversion, gomaxprocs, cpus
		n = 0
	}
	/^Benchmark/ {
		if (n++) printf ","
		printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", $1, $2
		m = 0
		for (i = 3; i + 1 <= NF; i += 2) {
			if (m++) printf ", "
			printf "\"%s\": %s", $(i + 1), $i
		}
		printf "}}"
	}
	END { printf "\n  ]\n}\n" }
	' >"$out"

echo "wrote $out"
