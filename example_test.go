package eona_test

import (
	"fmt"
	"time"

	"eona"
)

// Deriving the paper's §4 illustrative interface with the executable
// recipe: knobs and data get owners, the hypothetical global controller's
// uses are enumerated, and everything that crosses an ownership line is
// interface material.
func ExampleFigure5Recipe() {
	iface, err := eona.Figure5Recipe().WideInterface()
	if err != nil {
		panic(err)
	}
	for _, item := range iface.Items {
		fmt.Println(item.Direction, item.Data)
	}
	// Output:
	// I2A current_egress
	// I2A peering_capacity
	// I2A peering_congestion
	// A2I qoe_per_cdn
	// A2I traffic_volume_per_cdn
}

// Collecting client-side measurements into a blinded A2I export: groups
// below the k-anonymity floor are suppressed.
func ExampleNewA2ICollector() {
	col := eona.NewA2ICollector(eona.CollectorConfig{
		AppP:   "vod",
		Policy: eona.ExportPolicy{MinGroupSessions: 3},
		Window: time.Minute,
		Seed:   1,
	})
	model := eona.DefaultModel()
	for i := 0; i < 4; i++ {
		m := eona.SessionMetrics{PlayTime: 10 * time.Minute, AvgBitrate: 2e6, StartupDelay: time.Second}
		col.Ingest(eona.RecordFrom(model, m, "s", "vod", "isp-a", "cdnX", "east", 0))
	}
	// A lone session on cdnY: suppressed by k-anonymity.
	m := eona.SessionMetrics{PlayTime: 10 * time.Minute, AvgBitrate: 2e6, StartupDelay: time.Second}
	col.Ingest(eona.RecordFrom(model, m, "s", "vod", "isp-a", "cdnY", "west", 0))

	for _, s := range col.Summaries() {
		fmt.Printf("%s via %s: %.0f sessions\n", s.Key.ClientISP, s.Key.CDN, s.Sessions)
	}
	// Output:
	// isp-a via cdnX: 4 sessions
}

// The headline experiment: the Figure 5 limit cycle and its EONA fix,
// composed from the typed scenario runners.
func ExampleRunScenario() {
	base := eona.ScenarioConfig{Seed: 1, AppPMode: eona.ModeBaseline, InfPMode: eona.ModeBaseline}
	withEONA := eona.ScenarioConfig{Seed: 1, AppPMode: eona.ModeEONA, InfPMode: eona.ModeEONA}
	r := eona.OscillationResult{
		Baseline: eona.RunScenario(base),
		EONA:     eona.RunScenario(withEONA),
		Oracle:   eona.ScenarioOracle(withEONA),
	}
	fmt.Printf("baseline: oscillating=%v switches=%d\n",
		r.Baseline.Oscillating, r.Baseline.ISPSwitches+r.Baseline.AppPSwitches)
	fmt.Printf("eona:     oscillating=%v switches=%d score=%.0f (oracle %.0f)\n",
		r.EONA.Oscillating, r.EONA.ISPSwitches+r.EONA.AppPSwitches,
		r.EONA.MeanScore, r.Oracle)
	// Output:
	// baseline: oscillating=true switches=240
	// eona:     oscillating=false switches=1 score=100 (oracle 100)
}

// Staleness-aware consumption of interface data (§5): values published
// through a Delayed store become visible only after the interface delay.
func ExampleNewDelayed() {
	d := eona.NewDelayed[eona.TrafficEstimate](time.Minute)
	d.Set(0, eona.TrafficEstimate{CDN: "cdnX", VolumeBps: 150e6})

	if _, ok := d.Get(30 * time.Second); !ok {
		fmt.Println("30s: not visible yet")
	}
	if est, ok := d.Get(90 * time.Second); ok {
		fmt.Printf("90s: %s at %.0f Mbps\n", est.CDN, est.VolumeBps/1e6)
	}
	// Output:
	// 30s: not visible yet
	// 90s: cdnX at 150 Mbps
}
