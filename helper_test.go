package eona_test

import (
	"net/http/httptest"
	"testing"

	"eona"
)

// newTestHTTP serves a looking-glass server over loopback HTTP for the
// facade tests and returns its base URL.
func newTestHTTP(t *testing.T, srv *eona.Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
