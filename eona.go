// Package eona implements EONA — the Experience-Oriented Network
// Architecture of Jiang, Liu, Sekar, Stoica and Zhang (HotNets 2014) — as a
// runnable system: the two information-sharing interfaces between
// application providers (AppPs) and infrastructure providers (InfPs), the
// control loops on both sides, the looking-glass query servers that carry
// the interfaces over HTTP, and the simulation substrate on which every
// scenario from the paper is reproduced quantitatively.
//
// # The two interfaces
//
//   - EONA-A2I (application → infrastructure): client-side experience
//     measurements with attributes, aggregated and optionally blinded by a
//     Collector, plus per-CDN traffic-volume estimates.
//   - EONA-I2A (infrastructure → application): peering points with
//     congestion levels, capacity headroom and the InfP's current egress
//     decision; bottleneck attribution; alternative-server hints.
//
// Both interfaces carry information, never control: no type in this module
// lets one party set another party's knob — exactly the paper's stance that
// providers "are not relinquishing the knobs; they are merely exposing the
// information of values of the decisions associated with their knobs."
//
// # Package map
//
// This facade re-exports the stable surface. The implementation lives in
// internal packages:
//
//   - internal/core — interface types, A2I Collector, staleness model, and
//     the executable §4 interface-design recipe
//   - internal/control — baseline and EONA-enhanced AppP/InfP policies and
//     per-session monitors
//   - internal/lookingglass, internal/wire, internal/auth — the HTTP query
//     servers, versioned exchange format, and token/scope access control
//   - internal/netsim, internal/sim, internal/player, internal/cdn,
//     internal/isp, internal/qoe, internal/workload — the simulation
//     substrate (fluid max-min network, adaptive players, CDNs, ISPs)
//   - internal/agg, internal/privacy, internal/infer, internal/feature,
//     internal/stability — streaming aggregation, blinding, the inference
//     baseline of Figure 4, information-gain feature selection, and
//     oscillation detection/dampening
//   - internal/expt — experiments E1–E15 reproducing every figure and
//     scenario in the paper (see DESIGN.md §4 and EXPERIMENTS.md)
//
// # Quickstart
//
// Derive the paper's Figure 5 interface with the §4 recipe, then watch the
// oscillation disappear:
//
//	iface, _ := eona.Figure5Recipe().WideInterface()
//	for _, item := range iface.Items {
//	    fmt.Println(item.Direction, item.Data)
//	}
//	if tb, ok := eona.RunExperiment("E2", eona.ExperimentConfig{Seed: 1}); ok {
//	    fmt.Print(tb.String())
//	}
//
// See examples/ for runnable programs, including a live looking-glass
// server and client.
package eona

import (
	"time"

	"eona/internal/auth"
	"eona/internal/control"
	"eona/internal/core"
	"eona/internal/expt"
	"eona/internal/faults"
	"eona/internal/lookingglass"
	"eona/internal/netsim"
	"eona/internal/qoe"
	"eona/internal/sim"
	"eona/internal/wire"
)

// ---- Interface data types (EONA-A2I and EONA-I2A) ----

type (
	// QoERecord is one session's client-side measurement with its
	// attributes — the unit of A2I collection.
	QoERecord = core.QoERecord
	// QoESummary is the aggregated, blinded A2I export for one
	// (client ISP, CDN, cluster) group.
	QoESummary = core.QoESummary
	// SummaryKey identifies an A2I aggregation group.
	SummaryKey = core.SummaryKey
	// TrafficEstimate is the A2I per-CDN demand estimate that lets an
	// InfP size its traffic split across peering points (§4).
	TrafficEstimate = core.TrafficEstimate
	// PeeringInfo is the I2A peering hint: congestion, headroom, and
	// whether this is the InfP's current egress for the CDN.
	PeeringInfo = core.PeeringInfo
	// Attribution is the I2A bottleneck-attribution hint (access vs
	// peering vs CDN), optionally with a suggested bitrate cap.
	Attribution = core.Attribution
	// BottleneckSegment locates a problem on the delivery path.
	BottleneckSegment = core.BottleneckSegment
	// ServerHint is the I2A alternative-server hint of §2.
	ServerHint = core.ServerHint
)

// Bottleneck segments.
const (
	SegmentNone    = core.SegmentNone
	SegmentAccess  = core.SegmentAccess
	SegmentPeering = core.SegmentPeering
	SegmentCDN     = core.SegmentCDN
)

// ---- A2I production ----

type (
	// Collector is the AppP-side A2I producer: O(1) ingest of
	// QoERecords into windowed, blinded summaries and traffic
	// estimates.
	Collector = core.Collector
	// ShardedCollector is the cluster-mode Collector: N shards selected
	// by session-ID hash, each owned by its own goroutine, merged
	// lock-free at query time into the same summary outputs.
	ShardedCollector = core.ShardedCollector
	// ExportPolicy sets the blinding level of an A2I export
	// (k-anonymity, Laplace noise, coarsening) — §4's
	// effectiveness-vs-minimality knob.
	ExportPolicy = core.ExportPolicy
	// CollectorConfig is the constructor input for A2I collectors: AppP,
	// policy, traffic window, noise seed, and shard count (0 or 1 =
	// single-goroutine, >1 = cluster mode). Zero value is runnable.
	CollectorConfig = core.CollectorConfig
	// A2ICollector is the collector surface shared by Collector and
	// ShardedCollector (ingest, summaries, traffic estimates, flush/close).
	A2ICollector = core.A2ICollector
)

// NewA2ICollector builds the collector cfg describes: a *Collector when
// cfg.Shards <= 1, a *ShardedCollector otherwise.
func NewA2ICollector(cfg CollectorConfig) A2ICollector { return core.NewA2ICollector(cfg) }

// Per-collaborator standing: which surfaces each partner may read and
// under which blinding policy (§3 "choose the subset of collaborators",
// §4 "specify what can or cannot be shared"). Wire a Registry into
// Sources.QoESummariesFor via Collector.SummariesUnder.
type (
	// Registry tracks collaborators and their export policies.
	Registry = core.Registry
	// Partner is one collaborator's standing.
	Partner = core.Partner
	// Surface names an exportable interface surface.
	Surface = core.Surface
)

// Exportable surfaces.
const (
	SurfaceQoESummaries = core.SurfaceQoESummaries
	SurfaceTraffic      = core.SurfaceTraffic
	SurfacePeering      = core.SurfacePeering
	SurfaceAttribution  = core.SurfaceAttribution
	SurfaceServerHints  = core.SurfaceServerHints
)

// NewRegistry returns an empty collaborator registry.
func NewRegistry() *Registry { return core.NewRegistry() }

// ---- QoE model ----

type (
	// SessionMetrics are the raw client-side session measurements.
	SessionMetrics = qoe.SessionMetrics
	// Model scores sessions (0–100) and estimates engagement.
	Model = qoe.Model
)

// DefaultModel returns the scoring model used across the experiments.
func DefaultModel() Model { return qoe.DefaultModel() }

// RecordFrom flattens player metrics into a QoERecord.
func RecordFrom(model Model, m SessionMetrics, sessionID, appP, clientISP, cdnName, cluster string, at time.Duration) QoERecord {
	return core.RecordFrom(model, m, sessionID, appP, clientISP, cdnName, cluster, at)
}

// ---- The §4 recipe ----

type (
	// Recipe describes one use case: knobs, data attributes, their
	// owners, and the hypothetical global controller's uses.
	Recipe = core.Recipe
	// Interface is a derived set of shared attributes with directions.
	Interface = core.Interface
	// Knob is a control variable with its natural owner.
	Knob = core.Knob
	// DataAttr is an observable with its natural owner.
	DataAttr = core.DataAttr
	// Use is one (knob needs data) edge of the global optimization.
	Use = core.Use
	// Owner is AppP or InfP.
	Owner = core.Owner
	// Direction is A2I or I2A.
	Direction = core.Direction
)

// Owners and directions.
const (
	OwnerAppP = core.OwnerAppP
	OwnerInfP = core.OwnerInfP
	A2I       = core.A2I
	I2A       = core.I2A
)

// Figure5Recipe returns the paper's §4 illustrative example encoded as a
// Recipe; its WideInterface is exactly the A2I/I2A item list the paper
// derives.
func Figure5Recipe() Recipe { return core.Figure5Recipe() }

// ---- Staleness ----

// Delayed models inherent interface delay (§5): values published with Set
// become visible to Get only after the configured delay.
type Delayed[T any] struct{ inner *core.Delayed[T] }

// NewDelayed creates a staleness store with the given interface delay.
func NewDelayed[T any](delay time.Duration) *Delayed[T] {
	return &Delayed[T]{inner: core.NewDelayed[T](delay)}
}

// Set publishes a value at virtual time now (non-decreasing).
func (d *Delayed[T]) Set(now time.Duration, v T) { d.inner.Set(now, v) }

// Get returns the newest value visible at now.
func (d *Delayed[T]) Get(now time.Duration) (T, bool) { return d.inner.Get(now) }

// ---- Control policies ----

type (
	// AppPPolicy decides the AppP's knobs (CDN choice, bitrate cap).
	AppPPolicy = control.AppPPolicy
	// InfPPolicy decides the InfP's knobs (egress per CDN).
	InfPPolicy = control.InfPPolicy
	// BaselineAppP is today's trial-and-error CDN switcher.
	BaselineAppP = control.BaselineAppP
	// EONAAppP reacts to I2A attribution and peering hints.
	EONAAppP = control.EONAAppP
	// BaselineInfP is utilization-reactive cost-greedy TE (the Figure 5
	// oscillator).
	BaselineInfP = control.BaselineInfP
	// EONAInfP sizes egress choices with A2I traffic estimates.
	EONAInfP = control.EONAInfP
)

// ---- Looking-glass servers (the wire-level EONA interfaces) ----

type (
	// Server exposes an owner's A2I/I2A surfaces over HTTP.
	Server = lookingglass.Server
	// Client consumes a peer's looking-glass server.
	Client = lookingglass.Client
	// Sources wires an owner's data into a Server.
	Sources = lookingglass.Sources
	// AuthStore grants bearer tokens scopes per collaborator.
	AuthStore = auth.Store
	// Scope names one exported capability.
	Scope = auth.Scope
	// RateLimiter throttles collaborators.
	RateLimiter = auth.RateLimiter
)

// Scopes for the EONA surfaces.
const (
	ScopeA2IQoE     = auth.ScopeA2IQoE
	ScopeA2ITraffic = auth.ScopeA2ITraffic
	ScopeI2APeering = auth.ScopeI2APeering
	ScopeI2AAttrib  = auth.ScopeI2AAttrib
	ScopeI2AHints   = auth.ScopeI2AHints
	ScopeAdmin      = auth.ScopeAdmin
)

// WireVersion is the exchange-format version this module speaks.
const WireVersion = wire.Version

// NewAuthStore returns an empty token store.
func NewAuthStore() *AuthStore { return auth.NewStore() }

// NewRateLimiter allows rate requests/second with the given burst per
// collaborator.
func NewRateLimiter(rate, burst float64) *RateLimiter { return auth.NewRateLimiter(rate, burst) }

// NewServer builds a looking-glass server over the given sources. limiter
// may be nil.
func NewServer(store *AuthStore, limiter *RateLimiter, src Sources) *Server {
	return lookingglass.NewServer(store, limiter, src)
}

// NewClient targets a peer's looking-glass at baseURL with a bearer token.
func NewClient(baseURL, token string) *Client {
	return lookingglass.NewClient(baseURL, token, nil)
}

// ---- Experiments (the paper's figures and scenarios, runnable) ----

// Experiment result types; each has a Table() renderer.
type (
	// FlashCrowdResult is E1 / Figure 3.
	FlashCrowdResult = expt.E1Pair
	// OscillationResult is E2 / Figure 5.
	OscillationResult = expt.E2Result
	// InferenceResult is E3 / Figure 4.
	InferenceResult = expt.E3Result
	// CoarseControlResult is E4 / §2.
	CoarseControlResult = expt.E4Pair
	// EnergyResult is E5 / §2+§5.
	EnergyResult = expt.E5Result
	// StalenessResult is E6 / §5.
	StalenessResult = expt.E6Result
	// ScalabilityResult is E7 / §5.
	ScalabilityResult = expt.E7Result
	// InterfaceWidthResult is E8 / §4.
	InterfaceWidthResult = expt.E8Result
	// TimescaleResult is E9 / §5.
	TimescaleResult = expt.E9Result
	// FairnessResult is E10 / §5.
	FairnessResult = expt.E10Result
	// PrivacyResult is E11 / §4.
	PrivacyResult = expt.E11Result
	// FeatureSelectionResult is E12 / §4.
	FeatureSelectionResult = expt.E12Result
	// WebCellularResult is E13 / Figures 1(a)+4.
	WebCellularResult = expt.E13Result
	// SearchSpaceResult is E14 / §5.
	SearchSpaceResult = expt.E14Result
	// ChaosResult is E15 / §5 (fault injection).
	ChaosResult = expt.E15Result
)

// AllocatorStats is a snapshot of the fluid allocator's work counters
// (reallocations, flows/components re-solved, registry rebuilds, coalesced
// reactions). E7 embeds one per churn arm; eona-bench -v prints them.
type AllocatorStats = netsim.Stats

// ---- The simulated network (downstream what-if studies) ----

type (
	// Topology is an immutable set of directed links between nodes.
	Topology = netsim.Topology
	// Network allocates weighted max-min fair rates over a Topology. It
	// is single-goroutine; wrap it in a SharedNetwork for concurrent use.
	Network = netsim.Network
	// NetworkFlow is a flow handle returned by StartFlow.
	NetworkFlow = netsim.Flow
	// NetworkPath is an ordered list of links a flow crosses.
	NetworkPath = netsim.Path
	// NetworkReader is the read surface shared by Network, NetSnapshot
	// and SharedNetwork — write analysis code against it and it runs
	// identically over live or frozen state.
	NetworkReader = netsim.Reader
	// NetSnapshot is an immutable copy of a network's read surface, safe
	// for unsynchronized use from any goroutine.
	NetSnapshot = netsim.Snapshot
	// SharedNetwork wraps a Network for concurrent drivers: one owner
	// goroutine applies mutations, every read is served lock-free from
	// the latest published NetSnapshot.
	SharedNetwork = netsim.SharedNetwork
	// SharedConfig parameterizes NewSharedNetwork (queue depth,
	// deterministic sequencer mode, op recording).
	SharedConfig = netsim.SharedConfig
	// CongestionLevel classifies link utilization for I2A export.
	CongestionLevel = netsim.CongestionLevel
)

// Congestion levels, least to most loaded.
const (
	CongestionNone     = netsim.CongestionNone
	CongestionModerate = netsim.CongestionModerate
	CongestionHigh     = netsim.CongestionHigh
	CongestionSevere   = netsim.CongestionSevere
)

// NewTopology returns an empty topology; add links, then freeze it into a
// Network.
func NewTopology() *Topology { return netsim.NewTopology() }

// NewNetwork builds a single-goroutine max-min network over a topology.
func NewNetwork(t *Topology) *Network { return netsim.NewNetwork(t) }

// NewSharedNetwork wraps a Network for concurrent drivers and snapshot
// readers. The Network must not be touched directly afterwards; Close
// returns it.
func NewSharedNetwork(n *Network, cfg SharedConfig) *SharedNetwork {
	return netsim.NewShared(n, cfg)
}

// ---- The simulation engines (downstream what-if studies) ----

type (
	// SimEngine is the deterministic single-threaded discrete-event
	// engine every experiment runs on.
	SimEngine = sim.Engine
	// SimParallelEngine is the multi-driver engine: partition engines
	// advancing in lockstep over virtual instants, with a per-instant
	// barrier for deterministic SharedNetwork commits. Worker count never
	// changes results, only wall-clock.
	SimParallelEngine = sim.ParallelEngine
)

// NewSimEngine returns a serial engine seeded with seed.
func NewSimEngine(seed int64) *SimEngine { return sim.NewEngine(seed) }

// NewSimParallelEngine returns a lockstep multi-driver engine: partitions
// partition engines (partition p seeded seed+p) run by up to workers
// goroutines per instant (0 = GOMAXPROCS). Pair it with a deterministic
// SharedNetwork: give each partition its own Driver and call Commit from an
// OnInstantEnd hook.
func NewSimParallelEngine(seed int64, partitions, workers int) *SimParallelEngine {
	return sim.NewParallel(seed, partitions, workers)
}

// Fault injection (E15 and downstream chaos studies): deterministic,
// seeded fault plans applied to scenarios via ScenarioConfig.Faults, or to
// live looking-glass traffic via the wrappers in internal/faults.
type (
	// FaultPlan is a materialized fault schedule (link flaps/outages,
	// partner-exchange outages, error bursts, latency spikes).
	FaultPlan = faults.Plan
	// FaultConfig parameterizes GenerateFaults.
	FaultConfig = faults.Config
	// LinkFaultConfig describes one link's fault process.
	LinkFaultConfig = faults.LinkFaultConfig
	// PartnerFaultConfig describes the partner-exchange fault process.
	PartnerFaultConfig = faults.PartnerFaultConfig
)

// GenerateFaults materializes a fault plan from a seeded config: the same
// seed always yields the same plan.
func GenerateFaults(cfg FaultConfig) *FaultPlan { return faults.Generate(cfg) }

// Scenario types for custom Figure 5 runs (cmd/eona-sim and downstream
// what-if studies).
type (
	// ScenarioConfig parameterizes the Figure 5 scenario: capacities,
	// demand profile, control modes and periods, staleness, noise, and
	// dampening.
	ScenarioConfig = expt.Fig5Config
	// ScenarioResult summarizes a run: mean QoE, switch counts, limit
	// cycles, and the full decision histories.
	ScenarioResult = expt.Fig5Result
	// Mode selects a party's control generation.
	Mode = expt.Mode
)

// Control-policy generations.
const (
	ModeBaseline = expt.Baseline
	ModeEONA     = expt.EONA
)

// RunScenario executes a parameterized Figure 5 scenario.
func RunScenario(cfg ScenarioConfig) ScenarioResult { return expt.RunFig5(cfg) }

// ScenarioOracle returns the global-controller upper bound for a scenario.
func ScenarioOracle(cfg ScenarioConfig) float64 { return expt.Fig5Oracle(cfg) }

// FlashCrowdConfig parameterizes a single Figure 3 arm (crowd shape,
// access capacity, control mode).
type FlashCrowdConfig = expt.E1Config

// FlashCrowdArm is one arm's fleet-level outcome.
type FlashCrowdArm = expt.E1Result

// RunFlashCrowdConfig runs one Figure 3 arm with custom parameters.
func RunFlashCrowdConfig(cfg FlashCrowdConfig) FlashCrowdArm { return expt.RunE1Arm(cfg) }

// RunEnergySavingConfig reproduces the §2 server-shutdown scenario (E5)
// under cfg, returning the typed result (policy arms with QoE, energy and
// overload columns). RunExperiment("E5", cfg) renders the same run as a
// table.
func RunEnergySavingConfig(cfg ExperimentConfig) EnergyResult { return expt.RunE5(cfg.Seed) }

// ScalabilityConfig parameterizes E7: record volume and the shard counts
// swept for the cluster-mode rows.
type ScalabilityConfig = expt.E7Config

// ScalabilityShardPoint is one cluster-mode measurement.
type ScalabilityShardPoint = expt.E7ShardPoint

// ScalabilityDriverPoint is one shared-network churn measurement (N
// concurrent drivers pushing mutations through one owner goroutine).
type ScalabilityDriverPoint = expt.E7DriverPoint

// RunScalabilityConfig measures the A2I pipeline with explicit knobs.
func RunScalabilityConfig(cfg ScalabilityConfig) ScalabilityResult { return expt.RunE7Config(cfg) }

// ---- The E-suite as data (experiment registry + parallel runner) ----

type (
	// Experiment is one runnable E-suite entry (ID, slow flag, Run).
	Experiment = expt.Experiment
	// ExperimentTable is the rendered result of one experiment.
	ExperimentTable = expt.Table
	// ExperimentConfig carries every knob an experiment can draw from
	// (seed, E7 scalability parameters). The zero value is runnable.
	ExperimentConfig = expt.Config
	// ExperimentDef is one registered experiment: ID, title, slow flag,
	// and a Run hook over ExperimentConfig. Bind one to a config to get a
	// runnable Experiment.
	ExperimentDef = expt.Definition
)

// Experiments returns the full registry in suite order. This is the one
// enumeration of the E-suite; RunExperiment runs any entry by ID, and the
// typed config runners (RunScenario, RunFlashCrowdConfig,
// RunEnergySavingConfig, RunScalabilityConfig) cover callers that need
// structured results instead of rendered tables.
func Experiments() []ExperimentDef { return expt.Definitions() }

// LookupExperiment returns the registered definition for an ID ("E7").
func LookupExperiment(id string) (ExperimentDef, bool) { return expt.Lookup(id) }

// RunExperiment looks up an experiment by ID and runs it under cfg,
// returning its rendered table (nil, false for an unknown ID).
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentTable, bool) {
	d, ok := expt.Lookup(id)
	if !ok {
		return nil, false
	}
	return d.Run(cfg), true
}

// BindExperiments binds every registered definition to cfg, in suite
// order — the input RunExperiments consumes.
func BindExperiments(cfg ExperimentConfig) []Experiment { return expt.BindAll(cfg) }

// RunExperiments executes experiments with at most parallelism workers
// (GOMAXPROCS when ≤ 0), returning tables in input order. parallelism 1
// reproduces the sequential runner exactly.
func RunExperiments(exps []Experiment, parallelism int) []*ExperimentTable {
	return expt.RunConcurrent(exps, parallelism)
}
