package eona_test

// The benchmark harness: one testing.B benchmark per experiment (table /
// figure) indexed in DESIGN.md §4. Each benchmark regenerates its
// experiment end to end and reports the experiment's headline numbers as
// custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces every row recorded in EXPERIMENTS.md alongside the usual
// time/op. Seeds are fixed: the simulated results are bit-for-bit
// reproducible (E7's wall-clock throughputs vary by machine).

import (
	"fmt"
	"testing"

	"eona"
	"eona/internal/expt"
)

// BenchmarkE1FlashCrowd — Figure 3: flash crowd at the ISP access link.
func BenchmarkE1FlashCrowd(b *testing.B) {
	var r eona.FlashCrowdResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE1(1)
	}
	b.ReportMetric(r.Baseline.MeanScore, "baseline-score")
	b.ReportMetric(r.EONA.MeanScore, "eona-score")
	b.ReportMetric(r.Baseline.MeanBufRatio*100, "baseline-bufpct")
	b.ReportMetric(r.EONA.MeanBufRatio*100, "eona-bufpct")
	b.ReportMetric(r.Baseline.CDNSwitchesPerSession, "baseline-switches")
}

// BenchmarkE2Oscillation — Figure 5: control-loop oscillation.
func BenchmarkE2Oscillation(b *testing.B) {
	var r eona.OscillationResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE2(1)
	}
	b.ReportMetric(r.Baseline.MeanScore, "baseline-score")
	b.ReportMetric(r.EONA.MeanScore, "eona-score")
	b.ReportMetric(float64(r.Baseline.ISPSwitches+r.Baseline.AppPSwitches), "baseline-switches")
	b.ReportMetric(float64(r.EONA.ISPSwitches+r.EONA.AppPSwitches), "eona-switches")
	b.ReportMetric(r.Oracle, "oracle-score")
}

// BenchmarkE3Inference — Figure 4: QoE inference vs direct measurement.
func BenchmarkE3Inference(b *testing.B) {
	var r eona.InferenceResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE3(1)
	}
	b.ReportMetric(r.LinReg.MAE, "ols-mae")
	b.ReportMetric(r.KNN.MAE, "knn-mae")
	b.ReportMetric(r.LinReg.Spearman, "ols-spearman")
}

// BenchmarkE4CoarseControl — §2: server failure, CDN switch vs server hint.
func BenchmarkE4CoarseControl(b *testing.B) {
	var r eona.CoarseControlResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE4(1)
	}
	b.ReportMetric(r.Baseline.CohortMeanStallSec, "baseline-stall-s")
	b.ReportMetric(r.EONA.CohortMeanStallSec, "eona-stall-s")
	b.ReportMetric(r.EONA.CDNXRetention, "eona-retention")
}

// BenchmarkE5EnergySaving — §2/§5: server shutdown policies.
func BenchmarkE5EnergySaving(b *testing.B) {
	var r eona.EnergyResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE5(1)
	}
	for _, arm := range r.Arms {
		switch arm.Name {
		case "always-on":
			b.ReportMetric(arm.MeanScore, "alwayson-score")
		case "A2I feedback (+15% & QoE target)":
			b.ReportMetric(arm.MeanScore, "a2i-score")
			b.ReportMetric(arm.EnergyPct, "a2i-energy-pct")
		}
	}
}

// BenchmarkE6Staleness — §5: control quality vs interface delay.
func BenchmarkE6Staleness(b *testing.B) {
	var r eona.StalenessResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE6(1)
	}
	b.ReportMetric(r.Points[0].Result.MeanScore, "fresh-score")
	b.ReportMetric(r.Points[len(r.Points)-1].Result.MeanScore, "stalest-score")
	b.ReportMetric(r.Baseline.MeanScore, "noeona-score")
}

// BenchmarkE7Scalability — §5: A2I pipeline throughput, including the
// cluster-mode shard sweep (per-shard metrics are shardN-Mrec/s and
// shardN-speedup; speedups are bounded by GOMAXPROCS on the machine).
func BenchmarkE7Scalability(b *testing.B) {
	var r eona.ScalabilityResult
	for i := 0; i < b.N; i++ {
		r = eona.RunScalabilityConfig(eona.ScalabilityConfig{
			Records:     200_000,
			ShardCounts: []int{1, 2, 4, 8},
		})
	}
	b.ReportMetric(r.CollectorPerSec, "ingest-rec/s")
	b.ReportMetric(r.ImpliedSessionsPerDay/1e9, "sessions-B/day")
	b.ReportMetric(float64(r.QueryP50.Microseconds()), "query-p50-us")
	b.ReportMetric(r.ChurnFullPerSec/1e3, "churn-full-kmut/s")
	b.ReportMetric(r.ChurnIncrementalPerSec/1e3, "churn-incr-kmut/s")
	b.ReportMetric(r.ChurnRegistryPerSec/1e3, "churn-registry-kmut/s")
	b.ReportMetric(r.ChurnAutoTunePerSec/1e3, "churn-auto-kmut/s")
	b.ReportMetric(r.ChurnSpeedup, "churn-speedup")
	b.ReportMetric(r.ChurnRegistrySpeedup, "churn-registry-speedup")
	b.ReportMetric(r.ReactUncoalescedPerSec/1e3, "react-uncoal-k/s")
	b.ReportMetric(r.ReactCoalescedPerSec/1e3, "react-coal-k/s")
	b.ReportMetric(r.ReactFlowsSaved, "react-flows-saved")
	for _, p := range r.ShardPoints {
		b.ReportMetric(p.PerSec/1e6, fmt.Sprintf("shard%d-Mrec/s", p.Shards))
		b.ReportMetric(p.Speedup, fmt.Sprintf("shard%d-speedup", p.Shards))
	}
}

// BenchmarkE8InterfaceWidth — §4: interface width ladder.
func BenchmarkE8InterfaceWidth(b *testing.B) {
	var r eona.InterfaceWidthResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE8(1)
	}
	for _, arm := range r.Arms {
		switch arm.Name {
		case "none (status quo)":
			b.ReportMetric(arm.Result.MeanScore, "none-score")
		case "narrow two-way (paper)":
			b.ReportMetric(arm.Result.MeanScore, "narrow-score")
		}
	}
	b.ReportMetric(r.Oracle, "oracle-score")
}

// BenchmarkE9Timescales — §5: timescale coupling and dampening.
func BenchmarkE9Timescales(b *testing.B) {
	var r eona.TimescaleResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE9(1)
	}
	first := r.Points[0]
	hours := first.Undampened.Config.Horizon.Hours()
	b.ReportMetric(float64(first.Undampened.ISPSwitches+first.Undampened.AppPSwitches)/hours, "sync-switches/h")
	b.ReportMetric(float64(first.Dampened.ISPSwitches+first.Dampened.AppPSwitches)/hours, "damped-switches/h")
}

// BenchmarkE10Fairness — §5: fairness across AppPs.
func BenchmarkE10Fairness(b *testing.B) {
	var r eona.FairnessResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE10(1)
	}
	b.ReportMetric(r.Baseline.JainPerUser, "baseline-jain")
	b.ReportMetric(r.EONA.JainPerUser, "eona-jain")
}

// BenchmarkE11Privacy — §4: blinding level vs control quality.
func BenchmarkE11Privacy(b *testing.B) {
	var r eona.PrivacyResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE11(1)
	}
	b.ReportMetric(r.Points[0].MeanScore, "exact-score")
	b.ReportMetric(r.Points[len(r.Points)-1].MeanScore, "heaviest-noise-score")
	b.ReportMetric(r.BaselineScore, "nosharing-score")
}

// BenchmarkE12FeatureSelection — §4: information-gain attribute ranking.
func BenchmarkE12FeatureSelection(b *testing.B) {
	var r eona.FeatureSelectionResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE12(1)
	}
	b.ReportMetric(r.Ranking[0].Gain, "top-gain-bits")
	b.ReportMetric(r.Ranking[len(r.Ranking)-1].Gain, "bottom-gain-bits")
}

// BenchmarkE13WebCellular — Figures 1(a)+4: cellular web inference.
func BenchmarkE13WebCellular(b *testing.B) {
	var r eona.WebCellularResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE13(1)
	}
	b.ReportMetric(r.TTFBOnly.MAE, "ttfb-mae")
	b.ReportMetric(r.RadioFlow.MAE, "radioflow-mae")
	b.ReportMetric(r.RadioFlow.Spearman, "radioflow-spearman")
}

// BenchmarkE14SearchSpace — §5: exhaustive vs EONA-guided exploration.
func BenchmarkE14SearchSpace(b *testing.B) {
	var r eona.SearchSpaceResult
	for i := 0; i < b.N; i++ {
		r = expt.RunE14(1)
	}
	last := r.Points[len(r.Points)-1]
	b.ReportMetric(float64(last.ExhaustiveEvals), "exhaustive-evals")
	b.ReportMetric(float64(last.AscentEvals), "ascent-evals")
	b.ReportMetric(100*last.AscentScore/last.ExhaustiveScore, "ascent-pct-of-optimum")
}
