package eona_test

import (
	"context"
	"testing"
	"time"

	"eona"
)

// The facade tests exercise the public API exactly the way a downstream
// user would, end to end.

func TestFacadeRecipe(t *testing.T) {
	iface, err := eona.Figure5Recipe().WideInterface()
	if err != nil {
		t.Fatal(err)
	}
	if iface.Size() != 5 {
		t.Errorf("wide interface size = %d, want 5", iface.Size())
	}
	narrow := iface.Narrow("peering_congestion", "qoe_per_cdn")
	if narrow.Size() != 2 {
		t.Errorf("narrow size = %d", narrow.Size())
	}
}

func TestFacadeCollectorToLookingGlass(t *testing.T) {
	// AppP side: collect sessions.
	col := eona.NewCollector("vod", eona.ExportPolicy{MinGroupSessions: 2}, time.Minute, 1)
	model := eona.DefaultModel()
	for i := 0; i < 5; i++ {
		m := eona.SessionMetrics{PlayTime: 10 * time.Minute, AvgBitrate: 2e6, StartupDelay: time.Second}
		col.Ingest(eona.RecordFrom(model, m, "s", "vod", "isp1", "cdnX", "east", time.Duration(i)*time.Second))
	}

	// Export over a looking glass with scoped access.
	store := eona.NewAuthStore()
	store.Register("isp1-token", "isp1", eona.ScopeA2IQoE)
	srv := eona.NewServer(store, eona.NewRateLimiter(100, 10), eona.Sources{
		QoESummaries: col.Summaries,
	})
	ts := newTestHTTP(t, srv)

	// InfP side: query it.
	client := eona.NewClient(ts, "isp1-token")
	sums, err := client.QoESummaries(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].Key.CDN != "cdnX" || sums[0].Sessions != 5 {
		t.Errorf("summaries = %+v", sums)
	}
}

func TestFacadeDelayed(t *testing.T) {
	d := eona.NewDelayed[eona.Attribution](time.Minute)
	d.Set(0, eona.Attribution{Segment: eona.SegmentAccess})
	if _, ok := d.Get(30 * time.Second); ok {
		t.Error("value visible before the interface delay")
	}
	att, ok := d.Get(time.Minute)
	if !ok || att.Segment != eona.SegmentAccess {
		t.Errorf("Get = %+v, %v", att, ok)
	}
}

func TestFacadeExperimentsRender(t *testing.T) {
	// The cheap experiments, through the public API.
	if s := eona.RunOscillation(3).Table().String(); len(s) == 0 {
		t.Error("oscillation table empty")
	}
	if s := eona.RunFairness(1).Table().String(); len(s) == 0 {
		t.Error("fairness table empty")
	}
	if s := eona.RunEnergySaving(1).Table().String(); len(s) == 0 {
		t.Error("energy table empty")
	}
}

func TestFacadePolicies(t *testing.T) {
	var appP eona.AppPPolicy = &eona.BaselineAppP{Threshold: 60}
	var infP eona.InfPPolicy = &eona.EONAInfP{Margin: 0.1, HighWater: 0.9}
	if appP == nil || infP == nil {
		t.Fatal("policy interfaces not satisfied")
	}
}
