package eona_test

import (
	"context"
	"testing"
	"time"

	"eona"
)

// The facade tests exercise the public API exactly the way a downstream
// user would, end to end.

func TestFacadeRecipe(t *testing.T) {
	iface, err := eona.Figure5Recipe().WideInterface()
	if err != nil {
		t.Fatal(err)
	}
	if iface.Size() != 5 {
		t.Errorf("wide interface size = %d, want 5", iface.Size())
	}
	narrow := iface.Narrow("peering_congestion", "qoe_per_cdn")
	if narrow.Size() != 2 {
		t.Errorf("narrow size = %d", narrow.Size())
	}
}

func TestFacadeCollectorToLookingGlass(t *testing.T) {
	// AppP side: collect sessions.
	col := eona.NewA2ICollector(eona.CollectorConfig{
		AppP:   "vod",
		Policy: eona.ExportPolicy{MinGroupSessions: 2},
		Window: time.Minute,
		Seed:   1,
	})
	model := eona.DefaultModel()
	for i := 0; i < 5; i++ {
		m := eona.SessionMetrics{PlayTime: 10 * time.Minute, AvgBitrate: 2e6, StartupDelay: time.Second}
		col.Ingest(eona.RecordFrom(model, m, "s", "vod", "isp1", "cdnX", "east", time.Duration(i)*time.Second))
	}

	// Export over a looking glass with scoped access.
	store := eona.NewAuthStore()
	store.Register("isp1-token", "isp1", eona.ScopeA2IQoE)
	srv := eona.NewServer(store, eona.NewRateLimiter(100, 10), eona.Sources{
		QoESummaries: col.Summaries,
	})
	ts := newTestHTTP(t, srv)

	// InfP side: query it.
	client := eona.NewClient(ts, "isp1-token")
	sums, err := client.QoESummaries(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].Key.CDN != "cdnX" || sums[0].Sessions != 5 {
		t.Errorf("summaries = %+v", sums)
	}
}

func TestFacadeDelayed(t *testing.T) {
	d := eona.NewDelayed[eona.Attribution](time.Minute)
	d.Set(0, eona.Attribution{Segment: eona.SegmentAccess})
	if _, ok := d.Get(30 * time.Second); ok {
		t.Error("value visible before the interface delay")
	}
	att, ok := d.Get(time.Minute)
	if !ok || att.Segment != eona.SegmentAccess {
		t.Errorf("Get = %+v, %v", att, ok)
	}
}

func TestFacadeExperimentsRender(t *testing.T) {
	// The cheap experiments, through the public API.
	for _, id := range []string{"E2", "E10"} {
		tb, ok := eona.RunExperiment(id, eona.ExperimentConfig{Seed: 1})
		if !ok || len(tb.String()) == 0 {
			t.Errorf("%s table empty (found=%v)", id, ok)
		}
	}
	if s := eona.RunEnergySavingConfig(eona.ExperimentConfig{Seed: 1}).Table().String(); len(s) == 0 {
		t.Error("energy table empty")
	}
}

// TestFacadeExperimentRegistry pins the registry path and its equivalence
// with the typed scenario runners.
func TestFacadeExperimentRegistry(t *testing.T) {
	defs := eona.Experiments()
	if len(defs) != 17 {
		t.Fatalf("registry lists %d experiments, want 17", len(defs))
	}
	if _, ok := eona.LookupExperiment("E2"); !ok {
		t.Fatal("E2 missing from registry")
	}
	if _, ok := eona.RunExperiment("E99", eona.ExperimentConfig{}); ok {
		t.Error("RunExperiment accepted an unknown ID")
	}
	tb, ok := eona.RunExperiment("E2", eona.ExperimentConfig{Seed: 3})
	if !ok {
		t.Fatal("RunExperiment(E2) not found")
	}
	// E2 is the baseline-vs-EONA Figure 5 pair; composing it from the
	// typed scenario runners must render the identical table.
	base := eona.ScenarioConfig{Seed: 3, AppPMode: eona.ModeBaseline, InfPMode: eona.ModeBaseline}
	withEONA := eona.ScenarioConfig{Seed: 3, AppPMode: eona.ModeEONA, InfPMode: eona.ModeEONA}
	r := eona.OscillationResult{
		Baseline: eona.RunScenario(base),
		EONA:     eona.RunScenario(withEONA),
		Oracle:   eona.ScenarioOracle(withEONA),
	}
	if want := r.Table().String(); tb.String() != want {
		t.Error("registry E2 table differs from the typed scenario composition")
	}
	if got := len(eona.BindExperiments(eona.ExperimentConfig{Seed: 1})); got != 17 {
		t.Errorf("BindExperiments bound %d experiments, want 17", got)
	}
}

// TestFacadeCollectorConfig pins the config constructor's output shape
// through the facade.
func TestFacadeCollectorConfig(t *testing.T) {
	cfg := eona.CollectorConfig{AppP: "vod", Window: time.Minute, Seed: 1}
	col := eona.NewA2ICollector(cfg)
	model := eona.DefaultModel()
	for i := 0; i < 4; i++ {
		m := eona.SessionMetrics{PlayTime: 5 * time.Minute, AvgBitrate: 3e6}
		col.Ingest(eona.RecordFrom(model, m, "s", "vod", "isp1", "cdnX", "east", time.Duration(i)*time.Second))
	}
	sums := col.Summaries()
	if len(sums) != 1 || sums[0].Key.CDN != "cdnX" || sums[0].Sessions != 4 {
		t.Errorf("config-built summaries = %+v", sums)
	}
	col.Close()
}

// TestFacadeSharedNetwork drives the concurrency surface end to end
// through the facade: topology, shared wrapper, snapshot reads.
func TestFacadeSharedNetwork(t *testing.T) {
	topo := eona.NewTopology()
	l := topo.AddLink("a", "b", 10e6, time.Millisecond, "link")
	s := eona.NewSharedNetwork(eona.NewNetwork(topo), eona.SharedConfig{})
	f := s.StartFlow(eona.NetworkPath{l}, 4e6, "t")
	sn := s.Snapshot()
	if got, ok := sn.Flow(f.ID); !ok || got.Rate != 4e6 {
		t.Errorf("snapshot flow = %+v, %v", got, ok)
	}
	var r eona.NetworkReader = sn
	if r.Utilization(l.ID) != 0.4 {
		t.Errorf("utilization = %v, want 0.4", r.Utilization(l.ID))
	}
	if s.Congestion(l.ID) != eona.CongestionNone {
		t.Errorf("congestion = %v", s.Congestion(l.ID))
	}
	s.Close()
}

func TestFacadePolicies(t *testing.T) {
	var appP eona.AppPPolicy = &eona.BaselineAppP{Threshold: 60}
	var infP eona.InfPPolicy = &eona.EONAInfP{Margin: 0.1, HighWater: 0.9}
	if appP == nil || infP == nil {
		t.Fatal("policy interfaces not satisfied")
	}
}
