GO ?= go

.PHONY: check build vet test race bench chaos recover timetravel dashboard fmt

# Tier-1 gate: everything a PR must pass before merging.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Chaos suite: the deterministic fault-injection tests (E15 + faults pkg).
chaos:
	$(GO) test -race -count=1 -run 'E15|Chaos|Fault|Breaker' ./internal/expt ./internal/faults ./internal/lookingglass

# Kill-and-catch-up demo: boot eona-lg with a journal, kill -9 it, restart,
# and verify the A2I summaries are identical across the crash.
recover:
	scripts/recover_demo.sh

# Time-travel demo: journal an eona-lg run, query /v1/history/summaries at
# three offsets, kill -9, restart, and verify the answers are byte-identical.
timetravel:
	scripts/timetravel_demo.sh

# Control-plane smoke: boot eona-lg journaled, inject an impairment over
# /v1, stream a few SSE samples, kill -9, restart, and verify the fault
# replayed (eona-trace lists it; history answers are byte-identical).
# SERVE=1 leaves the server running with the dashboard URL printed.
dashboard:
	scripts/ctlplane_smoke.sh

fmt:
	gofmt -l -w .
